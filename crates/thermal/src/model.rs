//! The compact thermal model itself: RC-network assembly and solvers.
//!
//! # Solver architecture: one symbolic analysis, many numeric sweeps
//!
//! The sparsity pattern of the RC network is fixed by (stack, grid): flow
//! rates, transient time steps and two-phase fixed-point sweeps change only
//! matrix *values*. The model therefore assembles the flow-independent
//! conduction/capacitance skeleton exactly once (`OperatorSkeleton`),
//! keeps a triplet→CSC scatter map so each new operating point is an
//! O(nnz) value rewrite into the existing CSC, and runs exactly one full
//! pivoting factorisation per configuration — every later operator is
//! produced by [`SymbolicLu`] numeric refactorisation (with an automatic
//! re-pivoting fallback if the frozen pivot sequence degrades). The
//! [`SolverStats`] counters expose which path each solve took.

use std::sync::Arc;

use cmosaic_floorplan::stack::{CavitySpec, HeatSinkSpec, LayerKind, Stack3d};
use cmosaic_floorplan::GridSpec;
use cmosaic_hydraulics::duct::ChannelGeometry;
use cmosaic_hydraulics::LiquidProperties;
use cmosaic_materials::units::{Kelvin, Pressure, VolumetricFlow};
use cmosaic_sparse::{
    bicgstab_into, lu, BicgstabOptions, CscMatrix, GridShape, Ilu0, IterativeWorkspace, LuFactors,
    Multigrid, MultigridOptions, SolveWorkspace, SparseError, SymbolicLu, TripletMatrix,
};

use crate::cache::LruCache;
use crate::field::TemperatureField;
use crate::params::{AdvectionScheme, Coolant, SolverBackend, ThermalParams, TwoPhaseCoolant};
use crate::stencil::{
    StencilInterface, StencilLayer, StencilLayerKind, StencilOperator, StencilSink,
};
use crate::ThermalError;

/// Bound on each operator cache (steady and transient separately): a
/// continuously-modulating controller visits unboundedly many operating
/// points, and evicted operators cost only a cheap refactorisation to
/// rebuild.
const OPERATOR_CACHE_CAPACITY: usize = 8;

/// Multigrid coarsening floor: levels keep descending while the current
/// level has at least this many in-plane cells, so the direct-solved
/// coarsest level stays trivially small without over-deepening the
/// hierarchy on already-small grids (which always get at least one
/// smoothed level when the grid can coarsen at all).
const MG_COARSEN_FLOOR: usize = 64;

/// Per-layer data derived from the stack description.
#[derive(Debug, Clone)]
enum LayerModel {
    Solid {
        conductivity: f64,
        volumetric_heat_capacity: f64,
    },
    Cavity {
        spec: CavitySpec,
    },
}

/// The iterative half of a cached operator: the assembled matrix (kept for
/// matvecs — the direct path only needs its factors) and the ILU(0)
/// preconditioner built from it.
#[derive(Debug, Clone)]
struct IterativeOperator {
    csc: CscMatrix,
    ilu: Ilu0,
}

/// The multigrid half of a cached operator: the matrix-free fine-level
/// stencil (BiCGSTAB matvecs run straight off the grid geometry — the
/// fine operator is never assembled) and the geometric V-cycle
/// preconditioner built over its coarsening hierarchy.
#[derive(Debug, Clone)]
struct MgOperator {
    stencil: StencilOperator,
    mg: Multigrid<StencilOperator>,
}

/// One factorised/preconditioned operator at one exact operating point.
///
/// Under [`SolverBackend::DirectLu`], `factors` is always present and
/// the iterative halves absent. Under [`SolverBackend::IterativeIlu0`],
/// `iterative` is present (under [`SolverBackend::IterativeMg`], `mg`)
/// and `factors` starts out `None` — the expensive LU is built lazily,
/// only if a solve at this operating point ever has to fall back to the
/// direct path; the first fallback also *retires* the iterative half
/// (set back to `None`), so later solves at this operating point go
/// straight to the cached factors instead of re-running a doomed
/// iteration.
#[derive(Debug, Clone)]
struct CachedOperator {
    factors: Option<LuFactors>,
    iterative: Option<IterativeOperator>,
    mg: Option<MgOperator>,
    /// Flow-dependent constant RHS (advection inlet terms, sink ambient).
    rhs_base: Vec<f64>,
}

/// Exact-bit cache key of one factorised operator.
///
/// Steady operators use the [`OperatorKey::STEADY_DT`] sentinel (an IEEE
/// NaN payload no validated Δt can produce); transient keys embed the
/// exact Δt bit pattern. Because both coordinates are raw bit patterns of
/// validated-finite positive quantities, two nearby-but-distinct flow
/// rates or time steps can never alias one cache slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OperatorKey {
    flow_bits: u64,
    dt_bits: u64,
}

impl OperatorKey {
    /// Sentinel Δt of steady-state operators: the all-ones pattern is a
    /// NaN, and Δt is validated finite and positive before keying.
    const STEADY_DT: u64 = u64::MAX;

    fn steady(flow_bits: u64) -> Self {
        OperatorKey {
            flow_bits,
            dt_bits: Self::STEADY_DT,
        }
    }

    fn transient(flow_bits: u64, dt: f64) -> Self {
        debug_assert!(dt.is_finite() && dt > 0.0, "dt validated before keying");
        OperatorKey {
            flow_bits,
            dt_bits: dt.to_bits(),
        }
    }
}

/// Persistent per-model scratch: operator values, right-hand side, the
/// transient ping-pong state buffer, the dense refactorisation column and
/// the triangular-solve workspace. Taken out of the model (`mem::take`)
/// for the duration of each solve so the borrow checker sees it as
/// disjoint from the caches, then put back — the buffers warm up once and
/// are reused for every subsequent operating point.
#[derive(Debug, Default)]
struct ModelWorkspace {
    /// Triplet-ordered operator values (skeleton baseline + dynamic tail).
    vals: Vec<f64>,
    /// Right-hand side under assembly.
    rhs: Vec<f64>,
    /// Solution target of transient steps, swapped with the model state.
    next_state: Vec<f64>,
    /// Dense scratch column for numeric refactorisations.
    refactor_scratch: Vec<f64>,
    /// Forward/backward triangular-solve scratch.
    lu: SolveWorkspace,
    /// BiCGSTAB scratch of the iterative backend.
    iter: IterativeWorkspace,
    /// Buffer (re)allocations since the last drain into `SolverStats`.
    grows: u64,
}

/// Copies `src` into `dst` reusing `dst`'s capacity, counting real
/// reallocations into `grows`.
fn copy_into(dst: &mut Vec<f64>, src: &[f64], grows: &mut u64) {
    if dst.capacity() < src.len() {
        *grows += 1;
    }
    dst.clear();
    dst.extend_from_slice(src);
}

/// Sizes `v` to `n` reusing capacity, counting real reallocations. Only
/// for buffers the consumer overwrites completely (the transient solution
/// target): a warm call — length already `n` — skips the zero-fill.
fn ensure_len(v: &mut Vec<f64>, n: usize, grows: &mut u64) {
    if v.capacity() < n {
        *grows += 1;
    }
    if v.len() != n {
        v.clear();
        v.resize(n, 0.0);
    }
}

/// Counters for the solver paths a model has taken (diagnostics).
///
/// A healthy model shows `full_factorizations == 1` per sparsity pattern it
/// owns (one for the single-phase operator, one for the two-phase operator
/// if used) with everything else served by `refactorizations`;
/// `pivot_fallbacks` counts refactorisations that degraded and triggered a
/// fresh pivoting factorisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Full pivoting factorisations (symbolic + numeric).
    pub full_factorizations: u64,
    /// Numeric-only refactorisations over a frozen pattern.
    pub refactorizations: u64,
    /// Refactorisations aborted for pivot growth, repaired by a full
    /// factorisation (already counted in `full_factorizations`).
    pub pivot_fallbacks: u64,
    /// O(nnz) value rewrites of an existing CSC operator.
    pub value_updates: u64,
    /// Linear solves completed entirely inside the persistent workspace
    /// (no per-solve heap allocation).
    pub in_place_solves: u64,
    /// Times a persistent workspace buffer had to (re)allocate. A warm
    /// hot path keeps this counter flat — the assertion behind the
    /// zero-allocation contract.
    pub workspace_grows: u64,
    /// Symbolic analyses adopted from a [`SharedAnalysis`] donor instead
    /// of being captured by a local full factorisation.
    pub adopted_symbolics: u64,
    /// Solves served by the ILU(0)-BiCGSTAB backend.
    pub iterative_solves: u64,
    /// Total BiCGSTAB iterations across those solves (diagnosing
    /// preconditioner quality and the direct-vs-iterative crossover).
    pub iterative_iterations: u64,
    /// Times the iterative backend handed an operator to the direct
    /// path: BiCGSTAB breakdown, non-convergence, an ILU(0) construction
    /// failure, or a multigrid hierarchy that could not be built (odd
    /// in-plane grid dimensions, singular coarse operator). Each event
    /// retires that cached operator to direct solves for the rest of its
    /// cache lifetime, so the counter advances once per retirement, not
    /// once per subsequent solve. A healthy diagonally-dominant model
    /// keeps this at zero.
    pub iterative_fallbacks: u64,
    /// ILU(0) preconditioners produced by cloning the analysed template
    /// and re-running only the numeric elimination
    /// ([`cmosaic_sparse::Ilu0::refresh`]) — every warm operating-point
    /// change after the first skips the symbolic analysis this way.
    pub ilu_refreshes: u64,
    /// Multigrid V-cycles applied under [`SolverBackend::IterativeMg`].
    pub mg_cycles: u64,
    /// Damped-Jacobi smoother sweeps across all V-cycle levels.
    pub mg_smooth_sweeps: u64,
    /// Direct solves on the multigrid coarsest level.
    pub mg_coarse_solves: u64,
}

/// Occupancy and eviction statistics of the bounded operator caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached steady-state operators.
    pub steady_entries: usize,
    /// Cached transient (per-Δt) operators.
    pub transient_entries: usize,
    /// Steady operators evicted since construction.
    pub steady_evictions: u64,
    /// Transient operators evicted since construction.
    pub transient_evictions: u64,
    /// Per-cache capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Total live cached operators across both caches.
    pub fn entries(&self) -> usize {
        self.steady_entries + self.transient_entries
    }

    /// Total evictions across both caches.
    pub fn evictions(&self) -> u64 {
        self.steady_evictions + self.transient_evictions
    }
}

/// Everything the operator sparsity pattern depends on: grid dimensions
/// and the layer-kind sequence fix the node graph; the sink adds a node;
/// the advection scheme and coolant phase select which dynamic couplings
/// exist. Two models with equal signatures assemble identical skeleton
/// patterns, so one frozen [`SymbolicLu`] serves both.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternSignature {
    nx: usize,
    ny: usize,
    /// `0` = solid layer, `1` = cavity layer, bottom-up.
    layer_kinds: Vec<u8>,
    n_tiers: usize,
    has_sink: bool,
    upwind: bool,
    two_phase: bool,
}

/// A cheap-to-clone, thread-safe snapshot of one model's frozen symbolic
/// LU analyses, for sharing the single full pivoting factorisation of a
/// (stack, grid) pattern across every same-pattern model of a batch
/// sweep.
///
/// Obtain one from a model that has solved at least once
/// ([`ThermalModel::export_analysis`]) and hand it to fresh same-pattern
/// models ([`ThermalModel::adopt_analysis`]) *before* their first solve:
/// adopters then skip their own full factorisation entirely and go
/// straight to numeric refactorisation. Adoption is always safe — the
/// refactorisation path verifies the sparsity pattern exactly and falls
/// back to a local full factorisation on any mismatch.
#[derive(Debug, Clone)]
pub struct SharedAnalysis {
    signature: PatternSignature,
    single: Option<Arc<SymbolicLu>>,
    two_phase: Option<Arc<SymbolicLu>>,
}

impl SharedAnalysis {
    /// The pattern signature the analyses were captured under.
    pub fn signature(&self) -> &PatternSignature {
        &self.signature
    }
}

/// One sparsity pattern's worth of reusable solver state: the assembled
/// CSC operator (values rewritten per operating point), the triplet→CSC
/// scatter map, the flow-independent baseline values/RHS, and the frozen
/// symbolic analysis shared by every factorisation of this pattern.
#[derive(Debug, Clone)]
struct OperatorSkeleton {
    csc: CscMatrix,
    /// `map[k]` = CSC value slot of triplet entry `k`.
    map: Vec<usize>,
    /// Triplet-ordered values of the static (flow-independent) entries;
    /// dynamic slots are zero.
    base_vals: Vec<f64>,
    /// RHS contributions of the static entries (sink ambient).
    base_rhs: Vec<f64>,
    /// Triplet index of node `i`'s explicit capacitance-diagonal slot is
    /// `diag_start + i`; `None` for patterns with no transient use.
    diag_start: Option<usize>,
    /// First triplet index of the operating-point-dependent tail.
    dyn_start: usize,
    /// Frozen symbolic analysis; `None` until the first factorisation (or
    /// adoption from a [`SharedAnalysis`]). `Arc`-shared so a batch of
    /// same-pattern models pays for exactly one pivoting factorisation.
    symbolic: Option<Arc<SymbolicLu>>,
    /// `true` while `symbolic` came from a donor rather than a local
    /// factorisation — a pattern mismatch then falls back to a fresh
    /// factorisation instead of surfacing as an error.
    adopted: bool,
}

impl OperatorSkeleton {
    /// Builds the skeleton around a fully-pushed pattern triplet.
    fn new(
        tri: &TripletMatrix,
        base_rhs: Vec<f64>,
        diag_start: Option<usize>,
        dyn_start: usize,
    ) -> Self {
        let (csc, map) = tri.to_csc_with_map();
        OperatorSkeleton {
            csc,
            map,
            base_vals: tri.values().to_vec(),
            base_rhs,
            diag_start,
            dyn_start,
            symbolic: None,
            adopted: false,
        }
    }

    /// Rewrites the operator values and factorises into `target`, reusing
    /// `target`'s allocations when its shapes already match the frozen
    /// pattern. See [`factorize_pattern_into`] for the refactor/fallback
    /// behaviour.
    fn factorize_into(
        &mut self,
        vals: &[f64],
        target: &mut Option<LuFactors>,
        stats: &mut SolverStats,
        scratch: &mut Vec<f64>,
    ) -> Result<(), SparseError> {
        self.csc.update_values(&self.map, vals);
        stats.value_updates += 1;
        factorize_pattern_into(
            &mut self.symbolic,
            &mut self.adopted,
            &self.csc,
            target,
            stats,
            scratch,
        )
    }
}

/// Builds the direct-LU flavour of a cached operator from the skeleton's
/// freshly value-updated matrix: the primary [`SolverBackend::DirectLu`]
/// path, and the build-time fallback when an ILU(0) preconditioner cannot
/// be constructed.
fn direct_operator(
    skel: &mut OperatorSkeleton,
    ws: &mut ModelWorkspace,
    stats: &mut SolverStats,
) -> Result<CachedOperator, SparseError> {
    let mut factors = None;
    factorize_pattern_into(
        &mut skel.symbolic,
        &mut skel.adopted,
        &skel.csc,
        &mut factors,
        stats,
        &mut ws.refactor_scratch,
    )?;
    Ok(CachedOperator {
        factors,
        iterative: None,
        mg: None,
        rhs_base: ws.rhs.clone(),
    })
}

/// Factorises `a` into `target` over the skeleton's frozen symbolic
/// analysis: a numeric refactorisation whenever an analysis exists, with
/// automatic fallback to (and capture of) a fresh pivoting factorisation
/// on pivot-growth degradation — or on a pattern mismatch of an *adopted*
/// analysis, which makes adoption always safe.
///
/// A free function over the skeleton's fields (rather than a method) so
/// callers can factorise a matrix held elsewhere — e.g. the CSC snapshot
/// inside a cached iterative operator when a BiCGSTAB solve falls back to
/// direct LU — while the skeleton and the cache are borrowed side by side.
fn factorize_pattern_into(
    symbolic: &mut Option<Arc<SymbolicLu>>,
    adopted: &mut bool,
    a: &CscMatrix,
    target: &mut Option<LuFactors>,
    stats: &mut SolverStats,
    scratch: &mut Vec<f64>,
) -> Result<(), SparseError> {
    if let Some(sym) = &*symbolic {
        // The refactorisation sizes `scratch` to n internally; account
        // for the growth here so `workspace_grows` covers every
        // persistent buffer, as its documentation promises.
        if scratch.capacity() < sym.n() {
            stats.workspace_grows += 1;
        }
        let shapes_fit = target.as_ref().is_some_and(|f| {
            f.n() == sym.n() && f.nnz_l() == sym.nnz_l() && f.nnz_u() == sym.nnz_u()
        });
        if !shapes_fit {
            *target = Some(sym.allocate_factors());
        }
        let f = target.as_mut().expect("just ensured");
        match sym.refactor_into_with(a, f, scratch) {
            Ok(()) => {
                stats.refactorizations += 1;
                return Ok(());
            }
            Err(SparseError::UnstablePivot { .. }) => {
                stats.pivot_fallbacks += 1;
            }
            Err(SparseError::Shape { .. }) if *adopted => {
                // The donor's signature matched but its pattern does
                // not: discard the adoption and re-analyse locally.
            }
            Err(e) => return Err(e),
        }
    }
    let (factors, sym) = lu::factor_with_symbolic(a, lu::ColumnOrdering::Rcm)?;
    stats.full_factorizations += 1;
    let sym = Arc::new(sym);
    // Immediately re-sweep the same matrix over the just-captured
    // analysis and keep *those* values: the pivoting factorisation and
    // the frozen-pattern sweep accumulate updates in different orders,
    // so their results can differ in the last ULP. Normalising the fresh
    // path onto the refactor sweep makes analysis donation bit-neutral —
    // a donor's operator is bitwise what any adopter computes — so every
    // run is a pure function of its inputs regardless of sharing. The
    // sweep cannot degrade (pivot growth is judged against the pivots
    // just chosen for this very matrix), but if it ever errors, keep the
    // pivoting factorisation's values as before.
    let mut swept = sym.allocate_factors();
    match sym.refactor_into_with(a, &mut swept, scratch) {
        Ok(()) => *target = Some(swept),
        Err(_) => *target = Some(factors),
    }
    *symbolic = Some(sym);
    *adopted = false;
    Ok(())
}

/// The compact transient thermal model of one 3D stack.
///
/// See the [crate docs](crate) for the discretisation; construct with
/// [`ThermalModel::new`], set a flow rate for liquid-cooled stacks, then
/// call [`ThermalModel::steady_state`] or [`ThermalModel::step`].
#[derive(Debug)]
pub struct ThermalModel {
    grid: GridSpec,
    params: ThermalParams,
    width: f64,
    height: f64,
    dx: f64,
    dy: f64,
    layers: Vec<LayerModel>,
    thicknesses: Vec<f64>,
    source_layers: Vec<usize>,
    sink: Option<HeatSinkSpec>,
    coolant: LiquidProperties,
    n_cells: usize,
    n_nodes: usize,
    flow: VolumetricFlow,
    state: Vec<f64>,
    capacitance: Vec<f64>,
    steady_cache: LruCache<OperatorKey, CachedOperator>,
    transient_cache: LruCache<OperatorKey, CachedOperator>,
    /// Shared pattern/symbolic state of the single-phase operator.
    skeleton: Option<OperatorSkeleton>,
    /// Shared pattern/symbolic state of the two-phase (Dirichlet-fluid)
    /// operator, which has a different sparsity pattern.
    tp_skeleton: Option<OperatorSkeleton>,
    /// Persistent factor object of the two-phase fixed-point sweeps,
    /// reused across sweeps and solves via `refactor_into`.
    tp_factors: Option<LuFactors>,
    /// Frozen symbolic analysis of the multigrid *coarsest* level,
    /// donated to every subsequent hierarchy build so operating-point
    /// changes under [`SolverBackend::IterativeMg`] pay only a numeric
    /// coarse refactorisation.
    mg_coarse_symbolic: Option<Arc<SymbolicLu>>,
    /// First successfully analysed ILU(0), kept as the symbolic template:
    /// later operating points clone it and run the value-only
    /// [`Ilu0::refresh`] instead of repeating the pattern analysis.
    ilu_template: Option<Ilu0>,
    /// Persistent solve/assembly scratch — the zero-allocation hot path.
    workspace: ModelWorkspace,
    stats: SolverStats,
    two_phase_summary: Option<TwoPhaseSummary>,
}

/// Aggregate state of the most recent two-phase steady solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseSummary {
    /// Heat absorbed by the refrigerant, watts.
    pub heat_absorbed: f64,
    /// Worst channel-exit vapour quality across cavities.
    pub max_exit_quality: f64,
    /// Margin to the dry-out bound.
    pub dryout_margin: f64,
    /// Hottest local boiling HTC, W/m²K.
    pub peak_htc: f64,
    /// Coldest local saturation temperature (the refrigerant cools down).
    pub min_saturation: Kelvin,
}

impl ThermalModel {
    /// Builds a model for `stack` on `grid`.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::UnsupportedStack`] — adjacent cavity layers, or a
    ///   stack with neither cavities nor a sink (no heat-removal path, the
    ///   steady-state operator would be singular).
    /// * [`ThermalError::Material`] — coolant properties unavailable at the
    ///   configured inlet temperature.
    pub fn new(
        stack: &Stack3d,
        grid: GridSpec,
        params: ThermalParams,
    ) -> Result<Self, ThermalError> {
        let mut layers = Vec::with_capacity(stack.layers().len());
        let mut thicknesses = Vec::with_capacity(stack.layers().len());
        let mut source_layers = vec![usize::MAX; stack.tiers().len()];
        for (z, l) in stack.layers().iter().enumerate() {
            let lm = match &l.kind {
                LayerKind::Solid { material } => LayerModel::Solid {
                    conductivity: material.thermal_conductivity(),
                    volumetric_heat_capacity: material.volumetric_heat_capacity(),
                },
                LayerKind::Source { material, tier } => {
                    source_layers[*tier] = z;
                    LayerModel::Solid {
                        conductivity: material.thermal_conductivity(),
                        volumetric_heat_capacity: material.volumetric_heat_capacity(),
                    }
                }
                LayerKind::Cavity { spec } => LayerModel::Cavity { spec: spec.clone() },
            };
            layers.push(lm);
            thicknesses.push(l.thickness);
        }
        for w in layers.windows(2) {
            if matches!(w[0], LayerModel::Cavity { .. })
                && matches!(w[1], LayerModel::Cavity { .. })
            {
                return Err(ThermalError::UnsupportedStack {
                    detail: "two adjacent cavity layers (no solid tier between them)".into(),
                });
            }
        }
        if source_layers.contains(&usize::MAX) {
            return Err(ThermalError::UnsupportedStack {
                detail: "a tier has no source layer".into(),
            });
        }
        if !stack.is_liquid_cooled() && stack.sink().is_none() {
            return Err(ThermalError::UnsupportedStack {
                detail: "no heat-removal path (neither cavities nor a sink)".into(),
            });
        }
        let coolant = LiquidProperties::water_at(params.inlet).map_err(|e| match e {
            cmosaic_hydraulics::HydraulicsError::Material(m) => ThermalError::Material(m),
            other => ThermalError::UnsupportedStack {
                detail: other.to_string(),
            },
        })?;

        let n_cells = grid.cell_count() * layers.len();
        let has_sink = stack.sink().is_some();
        let n_nodes = n_cells + usize::from(has_sink);
        let dx = grid.cell_width(stack.width());
        let dy = grid.cell_height(stack.height());

        let mut model = ThermalModel {
            grid,
            params: params.clone(),
            width: stack.width(),
            height: stack.height(),
            dx,
            dy,
            layers,
            thicknesses,
            source_layers,
            sink: stack.sink().cloned(),
            coolant,
            n_cells,
            n_nodes,
            flow: VolumetricFlow(0.0),
            state: vec![params.initial.0; n_nodes],
            capacitance: Vec::new(),
            steady_cache: LruCache::new(OPERATOR_CACHE_CAPACITY),
            transient_cache: LruCache::new(OPERATOR_CACHE_CAPACITY),
            skeleton: None,
            tp_skeleton: None,
            tp_factors: None,
            mg_coarse_symbolic: None,
            ilu_template: None,
            workspace: ModelWorkspace::default(),
            stats: SolverStats::default(),
            two_phase_summary: None,
        };
        model.capacitance = model.build_capacitance();
        if model.is_two_phase() && !model.is_liquid_cooled() {
            return Err(ThermalError::UnsupportedStack {
                detail: "two-phase coolant requested on a stack without cavities".into(),
            });
        }
        Ok(model)
    }

    /// `true` when the cavities run an evaporating refrigerant (§III).
    pub fn is_two_phase(&self) -> bool {
        matches!(self.params.coolant, Coolant::TwoPhase(_))
    }

    /// Summary of the most recent two-phase solve, if any.
    pub fn two_phase_summary(&self) -> Option<&TwoPhaseSummary> {
        self.two_phase_summary.as_ref()
    }

    /// Grid specification.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Number of tiers.
    pub fn n_tiers(&self) -> usize {
        self.source_layers.len()
    }

    /// Number of cavity layers.
    pub fn n_cavities(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l, LayerModel::Cavity { .. }))
            .count()
    }

    /// `true` when the stack has micro-channel cavities.
    pub fn is_liquid_cooled(&self) -> bool {
        self.n_cavities() > 0
    }

    /// The current per-cavity flow rate.
    pub fn flow_rate(&self) -> VolumetricFlow {
        self.flow
    }

    /// Sets the per-cavity volumetric flow rate.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidFlow`] — the stack is air-cooled, the rate
    ///   is not positive, or the per-channel operating point leaves the
    ///   laminar validity range.
    pub fn set_flow_rate(&mut self, per_cavity: VolumetricFlow) -> Result<(), ThermalError> {
        if !self.is_liquid_cooled() {
            return Err(ThermalError::InvalidFlow {
                detail: "stack has no cavities".into(),
            });
        }
        if self.is_two_phase() {
            return Err(ThermalError::InvalidFlow {
                detail: "two-phase operation fixes the mass flux in TwoPhaseCoolant".into(),
            });
        }
        if !(per_cavity.0 > 0.0 && per_cavity.0.is_finite()) {
            return Err(ThermalError::InvalidFlow {
                detail: format!("flow must be positive, got {per_cavity}"),
            });
        }
        // Validate the channel operating point up front.
        for l in &self.layers {
            if let LayerModel::Cavity { spec } = l {
                let (_, h) = self.channel_operating_point(spec, per_cavity)?;
                debug_assert!(h > 0.0);
            }
        }
        self.flow = per_cavity;
        Ok(())
    }

    /// Per-channel flow and heat-transfer coefficient for a cavity at flow
    /// `q` per cavity.
    fn channel_operating_point(
        &self,
        spec: &CavitySpec,
        q: VolumetricFlow,
    ) -> Result<(f64, f64), ThermalError> {
        let n_ch = spec.channel_count(self.height).max(1);
        let q_ch = q.0 / n_ch as f64;
        let geom =
            ChannelGeometry::new(spec.channel_width(), spec.height(), self.width).map_err(|e| {
                ThermalError::InvalidFlow {
                    detail: e.to_string(),
                }
            })?;
        let h = geom
            .heat_transfer_coefficient(q_ch, &self.coolant)
            .map_err(|e| ThermalError::InvalidFlow {
                detail: e.to_string(),
            })?;
        Ok((q_ch, h))
    }

    /// Total pressure drop across one cavity's channels at the current
    /// flow.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidFlow`] if no flow is set or the stack is
    /// air-cooled.
    pub fn cavity_pressure_drop(&self) -> Result<Pressure, ThermalError> {
        let spec = self
            .layers
            .iter()
            .find_map(|l| match l {
                LayerModel::Cavity { spec } => Some(spec),
                _ => None,
            })
            .ok_or_else(|| ThermalError::InvalidFlow {
                detail: "stack has no cavities".into(),
            })?;
        if self.flow.0 <= 0.0 {
            return Err(ThermalError::InvalidFlow {
                detail: "no flow rate set".into(),
            });
        }
        let n_ch = spec.channel_count(self.height).max(1);
        let geom =
            ChannelGeometry::new(spec.channel_width(), spec.height(), self.width).map_err(|e| {
                ThermalError::InvalidFlow {
                    detail: e.to_string(),
                }
            })?;
        geom.pressure_drop(self.flow.0 / n_ch as f64, &self.coolant)
            .map_err(|e| ThermalError::InvalidFlow {
                detail: e.to_string(),
            })
    }

    fn node(&self, z: usize, iy: usize, ix: usize) -> usize {
        z * self.grid.cell_count() + iy * self.grid.nx() + ix
    }

    fn cell_area(&self) -> f64 {
        self.dx * self.dy
    }

    fn build_capacitance(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.n_nodes];
        let a = self.cell_area();
        for (z, l) in self.layers.iter().enumerate() {
            let t = self.thicknesses[z];
            let cv = match l {
                LayerModel::Solid {
                    volumetric_heat_capacity,
                    ..
                } => *volumetric_heat_capacity,
                LayerModel::Cavity { spec } => {
                    let phi = spec.porosity();
                    phi * self.coolant.volumetric_heat_capacity()
                        + (1.0 - phi) * spec.wall().volumetric_heat_capacity()
                }
            };
            for iy in 0..self.grid.ny() {
                for ix in 0..self.grid.nx() {
                    c[self.node(z, iy, ix)] = cv * a * t;
                }
            }
        }
        if let Some(sink) = &self.sink {
            c[self.n_cells] = sink.capacitance;
        }
        c
    }

    /// Vertical half-cell conductance of a solid layer (W/K per cell, for
    /// an area fraction `frac` of the cell footprint).
    fn half_conductance(&self, z: usize, frac: f64) -> f64 {
        match &self.layers[z] {
            LayerModel::Solid { conductivity, .. } => {
                conductivity * self.cell_area() * frac / (self.thicknesses[z] / 2.0)
            }
            LayerModel::Cavity { .. } => unreachable!("half_conductance on cavity layer"),
        }
    }

    fn series(gs: &[f64]) -> f64 {
        let inv: f64 = gs.iter().map(|g| 1.0 / g).sum();
        1.0 / inv
    }

    /// Solid neighbours of cavity layer `z` (the layers its fluid cells
    /// convect to).
    fn cavity_neighbours(&self, z: usize) -> (Option<usize>, Option<usize>) {
        let below = z
            .checked_sub(1)
            .filter(|&b| matches!(self.layers[b], LayerModel::Solid { .. }));
        let above = (z + 1 < self.layers.len())
            .then_some(z + 1)
            .filter(|&a| matches!(self.layers[a], LayerModel::Solid { .. }));
        (below, above)
    }

    /// Assembles the flow-independent skeleton of the single-phase
    /// operator, exactly once per model: all static entries (conduction,
    /// wall through-paths, sink) carry their final values; one explicit
    /// capacitance-diagonal slot per node and the flow-dependent tail
    /// (convection, advection) are pushed as zero-valued placeholders for
    /// [`ThermalModel::fill_flow_values`] to rewrite.
    fn build_skeleton(&self) -> OperatorSkeleton {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let mut t = TripletMatrix::with_capacity(self.n_nodes, self.n_nodes, self.n_nodes * 10);
        let mut rhs = vec![0.0; self.n_nodes];
        let a_cell = self.cell_area();

        // Lateral conduction within solid layers.
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Solid { conductivity, .. } = l else {
                continue; // cavity layers: lateral transport is advective
            };
            let tz = self.thicknesses[z];
            let gx = conductivity * self.dy * tz / self.dx;
            let gy = conductivity * self.dx * tz / self.dy;
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = self.node(z, iy, ix);
                    if ix + 1 < nx {
                        t.stamp_conductance(i, self.node(z, iy, ix + 1), gx);
                    }
                    if iy + 1 < ny {
                        t.stamp_conductance(i, self.node(z, iy + 1, ix), gy);
                    }
                }
            }
        }

        // Vertical coupling between adjacent solid layers.
        for z in 0..self.layers.len().saturating_sub(1) {
            let below_solid = matches!(self.layers[z], LayerModel::Solid { .. });
            let above_solid = matches!(self.layers[z + 1], LayerModel::Solid { .. });
            if below_solid && above_solid {
                let g = Self::series(&[
                    self.half_conductance(z, 1.0),
                    self.half_conductance(z + 1, 1.0),
                ]);
                for iy in 0..ny {
                    for ix in 0..nx {
                        t.stamp_conductance(self.node(z, iy, ix), self.node(z + 1, iy, ix), g);
                    }
                }
            }
            // Cavity↔solid coupling is flow-dependent (below).
        }

        // Cavity silicon-wall through-paths (geometry only, static).
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Cavity { spec } = l else {
                continue;
            };
            let (below, above) = self.cavity_neighbours(z);
            if let (Some(b), Some(a)) = (below, above) {
                let phi = spec.porosity();
                let k_wall = spec.wall().thermal_conductivity();
                let g_wall = Self::series(&[
                    self.half_conductance(b, 1.0 - phi),
                    k_wall * a_cell * (1.0 - phi) / self.thicknesses[z],
                    self.half_conductance(a, 1.0 - phi),
                ]);
                for iy in 0..ny {
                    for ix in 0..nx {
                        t.stamp_conductance(self.node(b, iy, ix), self.node(a, iy, ix), g_wall);
                    }
                }
            }
        }

        // Lumped sink node.
        if let Some(sink) = &self.sink {
            let s = self.n_cells;
            let zt = self.layers.len() - 1;
            debug_assert!(matches!(self.layers[zt], LayerModel::Solid { .. }));
            for iy in 0..ny {
                for ix in 0..nx {
                    t.stamp_conductance(self.node(zt, iy, ix), s, self.half_conductance(zt, 1.0));
                }
            }
            t.push(s, s, sink.conductance);
            rhs[s] += sink.conductance * sink.ambient.0;
        }

        // One explicit diagonal slot per node: zero in steady operators,
        // C/Δt in transient ones — keeping both on the same pattern so they
        // share one symbolic analysis.
        let diag_start = t.nnz();
        for i in 0..self.n_nodes {
            t.push(i, i, 0.0);
        }

        // Flow-dependent tail: cavity convection and advection
        // placeholders, in the exact order `fill_flow_values` writes them.
        // The four conductance slots are pushed explicitly (not via
        // `stamp_conductance`) so the slot order is owned by this module
        // alongside the fill helper that rewrites it.
        let dyn_start = t.nnz();
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Cavity { .. } = l else {
                continue;
            };
            let (below, above) = self.cavity_neighbours(z);
            for iy in 0..ny {
                for ix in 0..nx {
                    let f = self.node(z, iy, ix);
                    for n in [below, above].into_iter().flatten() {
                        let ni = self.node(n, iy, ix);
                        // Conductance slot order: (f,f), (n,n), (f,n), (n,f)
                        // — must match `fill_flow_values::stamp`.
                        t.push(f, f, 0.0);
                        t.push(ni, ni, 0.0);
                        t.push(f, ni, 0.0);
                        t.push(ni, f, 0.0);
                    }
                }
            }
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = self.node(z, iy, ix);
                    t.push(i, i, 0.0);
                    if ix > 0 {
                        t.push(i, self.node(z, iy, ix - 1), 0.0);
                    }
                }
            }
        }

        OperatorSkeleton::new(&t, rhs, Some(diag_start), dyn_start)
    }

    /// Rewrites the flow-dependent tail of the triplet value vector (and
    /// the advection inlet RHS terms) for `flow` — the O(nnz) half of an
    /// operator rebuild. The write order mirrors
    /// [`ThermalModel::build_skeleton`]'s placeholder order exactly.
    fn fill_flow_values(
        &self,
        flow: VolumetricFlow,
        dyn_start: usize,
        vals: &mut [f64],
        rhs: &mut [f64],
    ) -> Result<(), ThermalError> {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let mut k = dyn_start;
        // Conductance slot order (f,f), (n,n), (f,n), (n,f) → +g, +g, −g,
        // −g; must match the placeholder pushes in `build_skeleton`.
        fn stamp(vals: &mut [f64], k: &mut usize, g: f64) {
            vals[*k] = g;
            vals[*k + 1] = g;
            vals[*k + 2] = -g;
            vals[*k + 3] = -g;
            *k += 4;
        }
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Cavity { spec } = l else {
                continue;
            };
            let (q_ch, h) = self.channel_operating_point(spec, flow)?;
            let a_eff = self.effective_wetted_area(spec, h);
            let g_conv = h * a_eff;
            let (below, above) = self.cavity_neighbours(z);
            let g_below = below.map(|b| Self::series(&[g_conv, self.half_conductance(b, 1.0)]));
            let g_above = above.map(|a| Self::series(&[g_conv, self.half_conductance(a, 1.0)]));
            for _iy in 0..ny {
                for _ix in 0..nx {
                    if let Some(g) = g_below {
                        stamp(vals, &mut k, g);
                    }
                    if let Some(g) = g_above {
                        stamp(vals, &mut k, g);
                    }
                }
            }

            // Advection along +x.
            let pitch = spec.pitch();
            let n_ch_cell = self.dy / pitch;
            let mdot_cp = self.coolant.density * q_ch * n_ch_cell * self.coolant.specific_heat;
            let coeff = match self.params.advection {
                AdvectionScheme::Upwind => mdot_cp,
                AdvectionScheme::LinearProfile => 2.0 * mdot_cp,
            };
            for iy in 0..ny {
                for ix in 0..nx {
                    vals[k] = coeff;
                    k += 1;
                    if ix > 0 {
                        vals[k] = -coeff;
                        k += 1;
                    } else {
                        rhs[self.node(z, iy, ix)] += coeff * self.params.inlet.0;
                    }
                }
            }
        }
        debug_assert_eq!(k, vals.len(), "dynamic fill must cover the whole tail");
        Ok(())
    }

    /// Exact bit pattern of the current per-cavity flow (zero for
    /// air-cooled stacks, whose operator is flow-independent).
    fn flow_bits(&self) -> u64 {
        if self.is_liquid_cooled() {
            self.flow.0.to_bits()
        } else {
            0
        }
    }

    fn steady_key(&self) -> OperatorKey {
        OperatorKey::steady(self.flow_bits())
    }

    fn transient_key(&self, dt: f64) -> OperatorKey {
        OperatorKey::transient(self.flow_bits(), dt)
    }

    /// Produces the single-phase operator values and RHS for `flow` (and,
    /// for transients, `Δt = dt`) into the workspace — an O(nnz) rewrite
    /// of the skeleton's baseline with zero allocation once warm. The
    /// skeleton must exist.
    fn operator_values_into(
        &self,
        flow: VolumetricFlow,
        dt: Option<f64>,
        ws: &mut ModelWorkspace,
    ) -> Result<(), ThermalError> {
        let skel = self.skeleton.as_ref().expect("skeleton built");
        copy_into(&mut ws.vals, &skel.base_vals, &mut ws.grows);
        copy_into(&mut ws.rhs, &skel.base_rhs, &mut ws.grows);
        if let Some(dt) = dt {
            let d0 = skel
                .diag_start
                .expect("single-phase skeleton has diagonal slots");
            for (i, &c) in self.capacitance.iter().enumerate() {
                ws.vals[d0 + i] = c / dt;
            }
        }
        self.fill_flow_values(flow, skel.dyn_start, &mut ws.vals, &mut ws.rhs)
    }

    /// Builds the matrix-free stencil form of the single-phase operator
    /// at the current flow (and, for transients, `Δt = dt`) — the exact
    /// physics of [`ThermalModel::build_skeleton`] +
    /// [`ThermalModel::fill_flow_values`] expressed per layer instead of
    /// per nonzero, so an operating-point change is an O(nz) scalar
    /// update instead of an O(nnz) value rewrite plus factorisation.
    fn build_stencil(&self, dt: Option<f64>) -> Result<StencilOperator, ThermalError> {
        let nz = self.layers.len();
        let nxy = self.grid.cell_count();
        let shape = GridShape {
            nx: self.grid.nx(),
            ny: self.grid.ny(),
            nz,
            extra: usize::from(self.sink.is_some()),
        };
        let a_cell = self.cell_area();
        let mut layers = Vec::with_capacity(nz);
        let mut interfaces = vec![StencilInterface::symmetric(0.0); nz.saturating_sub(1)];
        let mut walls = vec![0.0; nz];
        for (z, l) in self.layers.iter().enumerate() {
            // Every cell of a layer shares one capacitance value.
            let diag_extra = dt.map_or(0.0, |dt| self.capacitance[z * nxy] / dt);
            match l {
                LayerModel::Solid { conductivity, .. } => {
                    let tz = self.thicknesses[z];
                    layers.push(StencilLayer {
                        kind: StencilLayerKind::Solid,
                        gx: conductivity * self.dy * tz / self.dx,
                        gy: conductivity * self.dx * tz / self.dy,
                        adv: 0.0,
                        diag_extra,
                    });
                }
                LayerModel::Cavity { spec } => {
                    let (q_ch, h) = self.channel_operating_point(spec, self.flow)?;
                    let a_eff = self.effective_wetted_area(spec, h);
                    let g_conv = h * a_eff;
                    let (below, above) = self.cavity_neighbours(z);
                    if let Some(b) = below {
                        interfaces[z - 1] = StencilInterface::symmetric(Self::series(&[
                            g_conv,
                            self.half_conductance(b, 1.0),
                        ]));
                    }
                    if let Some(a) = above {
                        interfaces[z] = StencilInterface::symmetric(Self::series(&[
                            g_conv,
                            self.half_conductance(a, 1.0),
                        ]));
                    }
                    if let (Some(b), Some(a)) = (below, above) {
                        let phi = spec.porosity();
                        let k_wall = spec.wall().thermal_conductivity();
                        walls[z] = Self::series(&[
                            self.half_conductance(b, 1.0 - phi),
                            k_wall * a_cell * (1.0 - phi) / self.thicknesses[z],
                            self.half_conductance(a, 1.0 - phi),
                        ]);
                    }
                    let n_ch_cell = self.dy / spec.pitch();
                    let mdot_cp =
                        self.coolant.density * q_ch * n_ch_cell * self.coolant.specific_heat;
                    let adv = match self.params.advection {
                        AdvectionScheme::Upwind => mdot_cp,
                        AdvectionScheme::LinearProfile => 2.0 * mdot_cp,
                    };
                    layers.push(StencilLayer {
                        kind: StencilLayerKind::Cavity,
                        gx: 0.0,
                        gy: 0.0,
                        adv,
                        diag_extra,
                    });
                }
            }
        }
        for (z, itf) in interfaces.iter_mut().enumerate() {
            let both_solid = matches!(self.layers[z], LayerModel::Solid { .. })
                && matches!(self.layers[z + 1], LayerModel::Solid { .. });
            if both_solid {
                *itf = StencilInterface::symmetric(Self::series(&[
                    self.half_conductance(z, 1.0),
                    self.half_conductance(z + 1, 1.0),
                ]));
            }
        }
        let sink = self.sink.as_ref().map(|s| StencilSink {
            g_top: self.half_conductance(nz - 1, 1.0),
            lumped: s.conductance,
            diag_extra: dt.map_or(0.0, |dt| s.capacitance / dt),
        });
        Ok(StencilOperator::new(shape, layers, interfaces, walls, sink))
    }

    /// Flow-dependent constant RHS of the stencil operator — the sink's
    /// ambient pull plus the advection inlet terms — matching what the
    /// assembled path accumulates into `skeleton.base_rhs` and
    /// [`ThermalModel::fill_flow_values`] writes per operating point.
    fn stencil_rhs_base(&self, stencil: &StencilOperator) -> Vec<f64> {
        let mut rhs = vec![0.0; self.n_nodes];
        if let Some(sink) = &self.sink {
            rhs[self.n_cells] += sink.conductance * sink.ambient.0;
        }
        for (z, layer) in stencil.layers().iter().enumerate() {
            if layer.adv != 0.0 {
                for iy in 0..self.grid.ny() {
                    rhs[self.node(z, iy, 0)] += layer.adv * self.params.inlet.0;
                }
            }
        }
        rhs
    }

    /// Builds the multigrid flavour of a cached operator: the matrix-free
    /// fine-level stencil plus a geometric V-cycle over its coarsening
    /// hierarchy, with only the (small) coarsest level ever assembled and
    /// LU-factored — through the donated frozen symbolic analysis after
    /// the first build. Returns `Ok(None)` when the grid cannot coarsen
    /// (odd in-plane dimensions) or the coarse operator is singular; the
    /// caller then falls back to the direct path.
    fn mg_operator(&mut self, dt: Option<f64>) -> Result<Option<MgOperator>, ThermalError> {
        let stencil = self.build_stencil(dt)?;
        let mut levels = Vec::new();
        let mut cur = stencil.clone();
        while levels.is_empty() || cur.shape().nx * cur.shape().ny >= MG_COARSEN_FLOOR {
            let Some(next) = cur.coarsen() else { break };
            let shape = cur.shape();
            let diag = cur.diagonal().to_vec();
            levels.push((cur, shape, diag));
            cur = next;
        }
        if levels.is_empty() {
            return Ok(None);
        }
        let coarse = cur.assemble();
        let donated = self.mg_coarse_symbolic.take();
        match Multigrid::new(levels, &coarse, donated, MultigridOptions::default()) {
            Ok(mg) => {
                self.mg_coarse_symbolic = Some(mg.coarse_symbolic());
                Ok(Some(MgOperator { stencil, mg }))
            }
            Err(SparseError::Singular { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn check_flow_set(&self) -> Result<(), ThermalError> {
        if self.is_liquid_cooled() && self.flow.0 <= 0.0 {
            return Err(ThermalError::InvalidFlow {
                detail: "liquid-cooled stack: call set_flow_rate first".into(),
            });
        }
        Ok(())
    }

    fn ensure_steady(&mut self, ws: &mut ModelWorkspace) -> Result<(), ThermalError> {
        self.ensure_operator(self.steady_key(), None, ws)
    }

    fn ensure_transient(&mut self, dt: f64, ws: &mut ModelWorkspace) -> Result<(), ThermalError> {
        self.ensure_operator(self.transient_key(dt), Some(dt), ws)
    }

    /// Builds (or confirms) the cached operator for one exact operating
    /// point. Under [`SolverBackend::IterativeMg`] the happy path never
    /// touches the assembled skeleton at all: it builds the matrix-free
    /// stencil (O(nz) scalars per operating point) and the V-cycle
    /// hierarchy over it. The other backends run an O(nnz) value rewrite
    /// of the skeleton, then either a direct-LU factorisation or an
    /// ILU(0) preconditioner (symbolic analysis once, value-only
    /// refreshes after) plus a snapshot of the assembled matrix, with
    /// the LU deferred until a solve actually falls back.
    fn ensure_operator(
        &mut self,
        key: OperatorKey,
        dt: Option<f64>,
        ws: &mut ModelWorkspace,
    ) -> Result<(), ThermalError> {
        let cache = if dt.is_some() {
            &mut self.transient_cache
        } else {
            &mut self.steady_cache
        };
        if cache.get(&key).is_some() {
            return Ok(());
        }
        self.check_flow_set()?;
        if matches!(self.params.solver, SolverBackend::IterativeMg { .. }) {
            if let Some(mgop) = self.mg_operator(dt)? {
                let rhs_base = self.stencil_rhs_base(&mgop.stencil);
                let op = CachedOperator {
                    factors: None,
                    iterative: None,
                    mg: Some(mgop),
                    rhs_base,
                };
                let cache = if dt.is_some() {
                    &mut self.transient_cache
                } else {
                    &mut self.steady_cache
                };
                cache.insert(key, op);
                return Ok(());
            }
            // The hierarchy could not be built (uncoarsenable grid or a
            // singular coarse operator): this operating point runs on the
            // direct path from the start, via the skeleton below.
            self.stats.iterative_fallbacks += 1;
        }
        if self.skeleton.is_none() {
            self.skeleton = Some(self.build_skeleton());
        }
        self.operator_values_into(self.flow, dt, ws)?;
        let skel = self.skeleton.as_mut().expect("just built");
        skel.csc.update_values(&skel.map, &ws.vals);
        self.stats.value_updates += 1;
        let op = match self.params.solver {
            SolverBackend::DirectLu | SolverBackend::IterativeMg { .. } => {
                direct_operator(skel, ws, &mut self.stats)?
            }
            SolverBackend::IterativeIlu0 { .. } => {
                let built = match &self.ilu_template {
                    // Warm operating-point change: clone the analysed
                    // pattern and re-run only the numeric elimination.
                    Some(template) => {
                        let mut ilu = template.clone();
                        ilu.refresh(&skel.csc).map(|()| {
                            self.stats.ilu_refreshes += 1;
                            ilu
                        })
                    }
                    None => Ilu0::new(&skel.csc),
                };
                match built {
                    Ok(ilu) => {
                        if self.ilu_template.is_none() {
                            self.ilu_template = Some(ilu.clone());
                        }
                        CachedOperator {
                            factors: None,
                            iterative: Some(IterativeOperator {
                                csc: skel.csc.clone(),
                                ilu,
                            }),
                            mg: None,
                            rhs_base: ws.rhs.clone(),
                        }
                    }
                    Err(SparseError::Singular { .. }) => {
                        // The preconditioner could not be built: this operating
                        // point runs on the direct path from the start.
                        self.stats.iterative_fallbacks += 1;
                        direct_operator(skel, ws, &mut self.stats)?
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        };
        let cache = if dt.is_some() {
            &mut self.transient_cache
        } else {
            &mut self.steady_cache
        };
        cache.insert(key, op);
        Ok(())
    }

    /// Solves the cached operator at `key` for the RHS already assembled
    /// in `ws.rhs`, writing the solution into `dst` (fully overwritten —
    /// unless `warm_start` seeds the iteration from `dst`'s current
    /// contents).
    ///
    /// Under the iterative backends this runs BiCGSTAB through the
    /// persistent workspace — preconditioned by the multigrid V-cycle
    /// over the matrix-free stencil ([`SolverBackend::IterativeMg`]) or
    /// by ILU(0) over the assembled snapshot
    /// ([`SolverBackend::IterativeIlu0`]); on
    /// `Breakdown`/`NoConvergence` it falls back to direct LU —
    /// factorising (and caching) the operator's LU on first need — and
    /// records the event in [`SolverStats::iterative_fallbacks`]. An
    /// associated function over disjoint fields so both solve paths can
    /// borrow the cache, the skeleton and the workspace side by side;
    /// the skeleton is optional because the multigrid happy path never
    /// builds one.
    #[allow(clippy::too_many_arguments)]
    fn solve_operator(
        cache: &mut LruCache<OperatorKey, CachedOperator>,
        skel: &mut Option<OperatorSkeleton>,
        backend: SolverBackend,
        warm_start: bool,
        key: OperatorKey,
        ws: &mut ModelWorkspace,
        dst: &mut [f64],
        stats: &mut SolverStats,
    ) -> Result<(), SparseError> {
        let op = cache.get_mut(&key).expect("operator ensured");
        let CachedOperator {
            factors,
            iterative,
            mg,
            ..
        } = op;
        let limits = backend.iteration_limits();
        if let (Some((tolerance, max_iterations)), Some(mgop)) = (limits, mg.as_mut()) {
            let opts = BicgstabOptions {
                tolerance,
                max_iterations,
                use_ilu0: true,
                warm_start,
            };
            let outcome = bicgstab_into(
                &mgop.stencil,
                &ws.rhs,
                Some(&mut mgop.mg),
                &opts,
                &mut ws.iter,
                dst,
            );
            let mg_stats = mgop.mg.take_stats();
            stats.mg_cycles += mg_stats.cycles;
            stats.mg_smooth_sweeps += mg_stats.smooth_sweeps;
            stats.mg_coarse_solves += mg_stats.coarse_solves;
            match outcome {
                Ok(summary) => {
                    stats.iterative_solves += 1;
                    stats.iterative_iterations += summary.iterations as u64;
                    return Ok(());
                }
                Err(SparseError::Breakdown { .. } | SparseError::NoConvergence { .. }) => {
                    // Same retirement policy as the ILU(0) branch below,
                    // except the multigrid path never built the shared
                    // skeleton: the fallback assembles the fine stencil
                    // on the spot and pays one fresh pivoting
                    // factorisation.
                    stats.iterative_fallbacks += 1;
                    if factors.is_none() {
                        let fine = mgop.stencil.assemble();
                        let (f, _symbolic) =
                            lu::factor_with_symbolic(&fine, lu::ColumnOrdering::Rcm)?;
                        stats.full_factorizations += 1;
                        *factors = Some(f);
                    }
                    *mg = None;
                }
                Err(e) => return Err(e),
            }
        }
        if let (Some((tolerance, max_iterations)), Some(itop)) = (limits, iterative.as_mut()) {
            let opts = BicgstabOptions {
                tolerance,
                max_iterations,
                use_ilu0: true,
                warm_start,
            };
            match bicgstab_into(
                &itop.csc,
                &ws.rhs,
                Some(&mut itop.ilu),
                &opts,
                &mut ws.iter,
                dst,
            ) {
                Ok(summary) => {
                    stats.iterative_solves += 1;
                    stats.iterative_iterations += summary.iterations as u64;
                    return Ok(());
                }
                Err(SparseError::Breakdown { .. } | SparseError::NoConvergence { .. }) => {
                    // Automatic direct fallback: factorise this operator's
                    // matrix snapshot and solve exactly. The operator is
                    // then *retired* to the direct path for the rest of
                    // its cache lifetime — re-running a doomed BiCGSTAB
                    // attempt (up to max_iterations of matvecs) before
                    // every warm repeat solve would be far slower than
                    // DirectLu with nothing but a counter as a clue. An
                    // eviction-and-rebuild gives the iterative path a
                    // fresh chance.
                    stats.iterative_fallbacks += 1;
                    if factors.is_none() {
                        let skel = skel
                            .as_mut()
                            .expect("the ILU(0) build path assembled the skeleton");
                        factorize_pattern_into(
                            &mut skel.symbolic,
                            &mut skel.adopted,
                            &itop.csc,
                            factors,
                            stats,
                            &mut ws.refactor_scratch,
                        )?;
                    }
                    *iterative = None;
                }
                Err(e) => return Err(e),
            }
        }
        let f = factors.as_ref().expect("direct factors present");
        f.solve_with(&mut ws.lu, &ws.rhs, dst)
    }

    fn scatter_powers(
        &self,
        tier_powers: &[Vec<f64>],
        rhs: &mut [f64],
    ) -> Result<(), ThermalError> {
        if tier_powers.len() != self.source_layers.len() {
            return Err(ThermalError::PowerShape {
                detail: format!(
                    "{} tier power maps supplied, stack has {} tiers",
                    tier_powers.len(),
                    self.source_layers.len()
                ),
            });
        }
        for (tier, p) in tier_powers.iter().enumerate() {
            if p.len() != self.grid.cell_count() {
                return Err(ThermalError::PowerShape {
                    detail: format!(
                        "tier {tier}: power map has {} cells, grid has {}",
                        p.len(),
                        self.grid.cell_count()
                    ),
                });
            }
            let z = self.source_layers[tier];
            let base = z * self.grid.cell_count();
            for (c, &w) in p.iter().enumerate() {
                rhs[base + c] += w;
            }
        }
        Ok(())
    }

    fn field_from_state(&self) -> TemperatureField {
        TemperatureField::new(
            self.grid.nx(),
            self.grid.ny(),
            self.layers.len(),
            self.source_layers.clone(),
            self.width,
            self.height,
            self.state.clone(),
            self.sink.is_some(),
        )
    }

    /// Overwrites `field` with the current state, reusing its buffers —
    /// the allocation-free counterpart of [`ThermalModel::current_field`].
    pub fn current_field_into(&self, field: &mut TemperatureField) {
        field.overwrite(
            self.grid.nx(),
            self.grid.ny(),
            self.layers.len(),
            &self.source_layers,
            self.width,
            self.height,
            &self.state,
            self.sink.is_some(),
        );
    }

    /// Solves for the steady-state temperature field under the given
    /// per-tier power maps (each of length `grid.cell_count()`, watts per
    /// cell) and makes it the current state.
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerShape`], [`ThermalError::InvalidFlow`] or a
    /// solver failure.
    pub fn steady_state(
        &mut self,
        tier_powers: &[Vec<f64>],
    ) -> Result<TemperatureField, ThermalError> {
        if let Coolant::TwoPhase(tp) = self.params.coolant.clone() {
            return self.steady_state_two_phase(&tp, tier_powers);
        }
        let mut ws = std::mem::take(&mut self.workspace);
        let r = self.steady_core(&mut ws, tier_powers);
        self.stats.workspace_grows += std::mem::take(&mut ws.grows);
        self.workspace = ws;
        r?;
        Ok(self.field_from_state())
    }

    /// The workspace-routed steady solve: cached operator lookup, RHS
    /// assembly and backend-selected solve without any per-call
    /// allocation.
    fn steady_core(
        &mut self,
        ws: &mut ModelWorkspace,
        tier_powers: &[Vec<f64>],
    ) -> Result<(), ThermalError> {
        self.ensure_steady(ws)?;
        let key = self.steady_key();
        {
            let op = self.steady_cache.peek(&key).expect("ensured above");
            copy_into(&mut ws.rhs, &op.rhs_base, &mut ws.grows);
        }
        self.scatter_powers(tier_powers, &mut ws.rhs)?;
        // `dst` is the model state, so an iterative warm start naturally
        // seeds from the previous steady (or transient) field.
        Self::solve_operator(
            &mut self.steady_cache,
            &mut self.skeleton,
            self.params.solver,
            self.params.warm_start,
            key,
            ws,
            &mut self.state,
            &mut self.stats,
        )?;
        self.stats.in_place_solves += 1;
        Ok(())
    }

    /// Fixed-point steady solve for an evaporating (two-phase) coolant:
    /// fluid cells are Dirichlet nodes pinned at the local saturation
    /// temperature, the boiling HTC depends on the local wall flux, and
    /// both are iterated to convergence (the `h ∝ q″^0.75` nucleate law is
    /// strongly contracting, a handful of sweeps suffice).
    fn steady_state_two_phase(
        &mut self,
        tp: &TwoPhaseCoolant,
        tier_powers: &[Vec<f64>],
    ) -> Result<TemperatureField, ThermalError> {
        let mut ws = std::mem::take(&mut self.workspace);
        let mut tp_factors = self.tp_factors.take();
        let r = self.two_phase_core(&mut ws, &mut tp_factors, tp, tier_powers);
        self.stats.workspace_grows += std::mem::take(&mut ws.grows);
        self.workspace = ws;
        self.tp_factors = tp_factors;
        r?;
        Ok(self.field_from_state())
    }

    fn two_phase_core(
        &mut self,
        ws: &mut ModelWorkspace,
        tp_factors: &mut Option<LuFactors>,
        tp: &TwoPhaseCoolant,
        tier_powers: &[Vec<f64>],
    ) -> Result<(), ThermalError> {
        let props = tp.refrigerant.properties();
        let inlet_state = props.saturation_state(tp.inlet_saturation)?;
        let nxy = self.grid.cell_count();
        let nx = self.grid.nx();
        let ny = self.grid.ny();

        // Nominal flux guess: total power over both wetted faces of all
        // cavities.
        let total_power: f64 = tier_powers.iter().flatten().sum();
        let wetted = 2.0 * self.width * self.height * self.n_cavities() as f64;
        let q_guess = (total_power / wetted).max(1.0e3);

        let mut h_map = vec![0.0f64; self.n_cells];
        let mut tsat_map = vec![tp.inlet_saturation.0; self.n_cells];
        let cavity_layers: Vec<(usize, CavitySpec)> = self
            .layers
            .iter()
            .enumerate()
            .filter_map(|(z, l)| match l {
                LayerModel::Cavity { spec } => Some((z, spec.clone())),
                _ => None,
            })
            .collect();
        for (z, spec) in &cavity_layers {
            let geom = ChannelGeometry::new(spec.channel_width(), spec.height(), self.width)
                .map_err(|e| ThermalError::InvalidFlow {
                    detail: e.to_string(),
                })?;
            let h0 = cmosaic_twophase::boiling::two_phase_htc(
                &props,
                &geom,
                &inlet_state,
                tp.inlet_quality,
                q_guess,
            )
            .map_err(|e| ThermalError::InvalidFlow {
                detail: e.to_string(),
            })?;
            for c in 0..nxy {
                h_map[z * nxy + c] = h0;
            }
        }

        let mut summary = TwoPhaseSummary {
            heat_absorbed: 0.0,
            max_exit_quality: tp.inlet_quality,
            dryout_margin: tp.dryout_quality - tp.inlet_quality,
            peak_htc: 0.0,
            min_saturation: tp.inlet_saturation,
        };

        if self.tp_skeleton.is_none() {
            self.tp_skeleton = Some(self.build_tp_skeleton());
        }
        for _sweep in 0..6 {
            self.two_phase_values_into(&h_map, &tsat_map, ws)?;
            self.tp_skeleton
                .as_mut()
                .expect("just built")
                .factorize_into(
                    &ws.vals,
                    tp_factors,
                    &mut self.stats,
                    &mut ws.refactor_scratch,
                )?;
            self.scatter_powers(tier_powers, &mut ws.rhs)?;
            let factors = tp_factors.as_ref().expect("factorised");
            factors.solve_with(&mut ws.lu, &ws.rhs, &mut self.state)?;
            self.stats.in_place_solves += 1;

            // Per-cell heat into the fluid, then re-march quality/pressure
            // and update the HTC field.
            summary.heat_absorbed = 0.0;
            summary.peak_htc = 0.0;
            summary.max_exit_quality = tp.inlet_quality;
            summary.min_saturation = tp.inlet_saturation;
            for (z, spec) in &cavity_layers {
                let geom = ChannelGeometry::new(spec.channel_width(), spec.height(), self.width)
                    .map_err(|e| ThermalError::InvalidFlow {
                        detail: e.to_string(),
                    })?;
                let n_ch_cell = self.dy / spec.pitch();
                let mdot_cell = tp.mass_flux * geom.cross_area() * n_ch_cell;
                let below = z.checked_sub(1);
                let above = (*z + 1 < self.layers.len()).then_some(z + 1);
                for iy in 0..ny {
                    let mut x_local = tp.inlet_quality;
                    let mut p_local = inlet_state.pressure;
                    for ix in 0..nx {
                        let f_idx = self.node(*z, iy, ix);
                        let t_f = self.state[f_idx];
                        // Heat flowing into this fluid cell from its solid
                        // neighbours through the convective conductances.
                        let mut q_cell = 0.0;
                        let a_eff = self.effective_wetted_area(spec, h_map[f_idx]);
                        for n in [below, above].into_iter().flatten() {
                            if !matches!(self.layers[n], LayerModel::Solid { .. }) {
                                continue;
                            }
                            let g = Self::series(&[
                                h_map[f_idx] * a_eff,
                                self.half_conductance(n, 1.0),
                            ]);
                            q_cell += g * (self.state[self.node(n, iy, ix)] - t_f);
                        }
                        summary.heat_absorbed += q_cell;

                        let local_state = props.saturation_state_at_pressure(p_local)?;
                        // Quality march.
                        let dx_len = self.dx;
                        x_local += (q_cell / (mdot_cell * local_state.h_fg)).max(0.0);
                        if x_local >= tp.dryout_quality {
                            return Err(ThermalError::Dryout {
                                cavity: *z,
                                quality: x_local,
                            });
                        }
                        // Pressure march (homogeneous model).
                        let dpdz = cmosaic_twophase::boiling::pressure_gradient(
                            &geom,
                            &local_state,
                            tp.mass_flux,
                            x_local.min(1.0),
                            0.0,
                        )
                        .map_err(|e| ThermalError::InvalidFlow {
                            detail: e.to_string(),
                        })?;
                        p_local = cmosaic_materials::units::Pressure(p_local.0 - dpdz * dx_len);
                        let tsat = props.saturation_temperature(p_local)?;
                        tsat_map[f_idx] = tsat.0;
                        if tsat.0 < summary.min_saturation.0 {
                            summary.min_saturation = tsat;
                        }
                        // HTC update from the realised flux (under-relaxed).
                        let q_flux = (q_cell / (2.0 * self.cell_area())).max(1.0e3);
                        let h_new = cmosaic_twophase::boiling::two_phase_htc(
                            &props,
                            &geom,
                            &local_state,
                            x_local.min(1.0),
                            q_flux,
                        )
                        .map_err(|e| ThermalError::InvalidFlow {
                            detail: e.to_string(),
                        })?;
                        h_map[f_idx] = 0.5 * h_map[f_idx] + 0.5 * h_new;
                        if h_map[f_idx] > summary.peak_htc {
                            summary.peak_htc = h_map[f_idx];
                        }
                        if x_local > summary.max_exit_quality {
                            summary.max_exit_quality = x_local;
                        }
                    }
                }
            }
        }
        summary.dryout_margin = tp.dryout_quality - summary.max_exit_quality;
        self.two_phase_summary = Some(summary);
        Ok(())
    }

    /// Effective wetted area per cell per side (fin-enhanced), for the
    /// current local HTC.
    fn effective_wetted_area(&self, spec: &CavitySpec, h: f64) -> f64 {
        let phi = spec.porosity();
        let hc = spec.height();
        let pitch = spec.pitch();
        let t_wall = pitch - spec.channel_width();
        let k_wall = spec.wall().thermal_conductivity();
        let m = (2.0 * h.max(1.0) / (k_wall * t_wall)).sqrt();
        let mh = m * hc / 2.0;
        let eta_fin = if mh > 1e-9 { mh.tanh() / mh } else { 1.0 };
        self.cell_area() * (phi + (hc / pitch) * eta_fin)
    }

    /// Assembles the static part of the two-phase operator once: fluid
    /// cells are Dirichlet rows (unit diagonal), solid conduction and the
    /// wall through-paths carry their final values, and the boiling-HTC-
    /// dependent one-sided couplings are zero-valued placeholders for
    /// [`ThermalModel::fill_two_phase_values`].
    fn build_tp_skeleton(&self) -> OperatorSkeleton {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let mut t = TripletMatrix::with_capacity(self.n_nodes, self.n_nodes, self.n_nodes * 8);
        let mut rhs = vec![0.0; self.n_nodes];
        let a_cell = self.cell_area();

        // Lateral conduction within solid layers (same as single-phase).
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Solid { conductivity, .. } = l else {
                continue;
            };
            let tz = self.thicknesses[z];
            let gx = conductivity * self.dy * tz / self.dx;
            let gy = conductivity * self.dx * tz / self.dy;
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = self.node(z, iy, ix);
                    if ix + 1 < nx {
                        t.stamp_conductance(i, self.node(z, iy, ix + 1), gx);
                    }
                    if iy + 1 < ny {
                        t.stamp_conductance(i, self.node(z, iy + 1, ix), gy);
                    }
                }
            }
        }

        // Solid-solid vertical coupling.
        for z in 0..self.layers.len().saturating_sub(1) {
            let below_solid = matches!(self.layers[z], LayerModel::Solid { .. });
            let above_solid = matches!(self.layers[z + 1], LayerModel::Solid { .. });
            if below_solid && above_solid {
                let g = Self::series(&[
                    self.half_conductance(z, 1.0),
                    self.half_conductance(z + 1, 1.0),
                ]);
                for iy in 0..ny {
                    for ix in 0..nx {
                        t.stamp_conductance(self.node(z, iy, ix), self.node(z + 1, iy, ix), g);
                    }
                }
            }
        }

        // Cavity layers: Dirichlet fluid rows and silicon wall paths.
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Cavity { spec } = l else {
                continue;
            };
            let phi = spec.porosity();
            let k_wall = spec.wall().thermal_conductivity();
            let (below, above) = self.cavity_neighbours(z);
            for iy in 0..ny {
                for ix in 0..nx {
                    let f = self.node(z, iy, ix);
                    // Dirichlet row: T_f = T_sat(local); the RHS value is
                    // dynamic.
                    t.push(f, f, 1.0);
                    if let (Some(b), Some(a)) = (below, above) {
                        let g_wall = Self::series(&[
                            self.half_conductance(b, 1.0 - phi),
                            k_wall * a_cell * (1.0 - phi) / self.thicknesses[z],
                            self.half_conductance(a, 1.0 - phi),
                        ]);
                        t.stamp_conductance(self.node(b, iy, ix), self.node(a, iy, ix), g_wall);
                    }
                }
            }
        }

        // Lumped sink node (unusual on a two-phase stack, but allowed).
        if let Some(sink) = &self.sink {
            let s = self.n_cells;
            let zt = self.layers.len() - 1;
            for iy in 0..ny {
                for ix in 0..nx {
                    t.stamp_conductance(self.node(zt, iy, ix), s, self.half_conductance(zt, 1.0));
                }
            }
            t.push(s, s, sink.conductance);
            rhs[s] += sink.conductance * sink.ambient.0;
        }

        // Boiling-HTC-dependent one-sided couplings, placeholder order
        // mirrored by `fill_two_phase_values`.
        let dyn_start = t.nnz();
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Cavity { .. } = l else {
                continue;
            };
            let (below, above) = self.cavity_neighbours(z);
            for iy in 0..ny {
                for ix in 0..nx {
                    let f = self.node(z, iy, ix);
                    for n in [below, above].into_iter().flatten() {
                        let ni = self.node(n, iy, ix);
                        t.push(ni, ni, 0.0);
                        t.push(ni, f, 0.0);
                    }
                }
            }
        }

        OperatorSkeleton::new(&t, rhs, None, dyn_start)
    }

    /// Produces the two-phase operator values and RHS for the given local
    /// HTC and saturation-temperature fields into the workspace — an
    /// O(nnz) rewrite per fixed-point sweep, allocation-free once warm.
    fn two_phase_values_into(
        &self,
        h_map: &[f64],
        tsat_map: &[f64],
        ws: &mut ModelWorkspace,
    ) -> Result<(), ThermalError> {
        let skel = self.tp_skeleton.as_ref().expect("two-phase skeleton built");
        copy_into(&mut ws.vals, &skel.base_vals, &mut ws.grows);
        copy_into(&mut ws.rhs, &skel.base_rhs, &mut ws.grows);
        let (vals, rhs) = (&mut ws.vals, &mut ws.rhs);
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let mut k = skel.dyn_start;
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Cavity { spec } = l else {
                continue;
            };
            let (below, above) = self.cavity_neighbours(z);
            for iy in 0..ny {
                for ix in 0..nx {
                    let f = self.node(z, iy, ix);
                    rhs[f] = tsat_map[f];
                    let a_eff = self.effective_wetted_area(spec, h_map[f]);
                    for n in [below, above].into_iter().flatten() {
                        let g = Self::series(&[h_map[f] * a_eff, self.half_conductance(n, 1.0)]);
                        vals[k] = g;
                        vals[k + 1] = -g;
                        k += 2;
                    }
                }
            }
        }
        debug_assert_eq!(k, vals.len(), "dynamic fill must cover the whole tail");
        Ok(())
    }

    /// Advances the transient state by `dt` seconds under the given power
    /// maps (backward Euler) and returns the new field.
    ///
    /// Prefer [`ThermalModel::step_into`] in tight loops: it reuses a
    /// caller-owned field buffer and, once warm, performs zero heap
    /// allocation per sub-step.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidTimestep`], plus the conditions of
    /// [`ThermalModel::steady_state`].
    pub fn step(
        &mut self,
        tier_powers: &[Vec<f64>],
        dt: f64,
    ) -> Result<TemperatureField, ThermalError> {
        self.step_in_place(tier_powers, dt)?;
        Ok(self.field_from_state())
    }

    /// Allocation-free transient step: advances the state by `dt` seconds
    /// and overwrites `field` with the result, reusing its buffers.
    ///
    /// On the warm path (operator cached, workspace and `field` sized) the
    /// whole sub-step — RHS assembly, triangular solve, state ping-pong
    /// swap, field update — touches the heap zero times;
    /// [`SolverStats::workspace_grows`] stays flat, which the tests
    /// assert.
    ///
    /// # Errors
    ///
    /// See [`ThermalModel::step`].
    pub fn step_into(
        &mut self,
        tier_powers: &[Vec<f64>],
        dt: f64,
        field: &mut TemperatureField,
    ) -> Result<(), ThermalError> {
        self.step_in_place(tier_powers, dt)?;
        self.current_field_into(field);
        Ok(())
    }

    fn step_in_place(&mut self, tier_powers: &[Vec<f64>], dt: f64) -> Result<(), ThermalError> {
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(ThermalError::InvalidTimestep { dt });
        }
        if self.is_two_phase() {
            return Err(ThermalError::UnsupportedStack {
                detail: "transient two-phase simulation is not supported; \
                         use steady_state (the film's thermal storage makes \
                         quasi-static analysis the conservative choice)"
                    .into(),
            });
        }
        let mut ws = std::mem::take(&mut self.workspace);
        let r = self.step_core(&mut ws, tier_powers, dt);
        self.stats.workspace_grows += std::mem::take(&mut ws.grows);
        self.workspace = ws;
        r
    }

    fn step_core(
        &mut self,
        ws: &mut ModelWorkspace,
        tier_powers: &[Vec<f64>],
        dt: f64,
    ) -> Result<(), ThermalError> {
        self.ensure_transient(dt, ws)?;
        let key = self.transient_key(dt);
        {
            let op = self.transient_cache.peek(&key).expect("ensured above");
            copy_into(&mut ws.rhs, &op.rhs_base, &mut ws.grows);
        }
        self.scatter_powers(tier_powers, &mut ws.rhs)?;
        for ((r, &c), &s) in ws.rhs.iter_mut().zip(&self.capacitance).zip(&self.state) {
            *r += c / dt * s;
        }
        ensure_len(&mut ws.next_state, self.n_nodes, &mut ws.grows);
        // The solution target is lifted out of the workspace for the call
        // (mem::take of a Vec is pointer-swap, not allocation) so the
        // solver can borrow the rest of the workspace alongside it.
        let mut next = std::mem::take(&mut ws.next_state);
        if self.params.warm_start {
            // Seed the iterative solve from the current state (the
            // ping-pong buffer otherwise holds the state of two steps
            // ago). With the flag off, BiCGSTAB overwrites `next`
            // unconditionally and stays bit-identical per solve.
            next.copy_from_slice(&self.state);
        }
        let r = Self::solve_operator(
            &mut self.transient_cache,
            &mut self.skeleton,
            self.params.solver,
            self.params.warm_start,
            key,
            ws,
            &mut next,
            &mut self.stats,
        );
        ws.next_state = next;
        r?;
        // Ping-pong: the solved buffer becomes the state, the old state
        // becomes next step's solution target.
        std::mem::swap(&mut self.state, &mut ws.next_state);
        self.stats.in_place_solves += 1;
        Ok(())
    }

    /// The current temperature field (initial temperature before any
    /// solve).
    pub fn current_field(&self) -> TemperatureField {
        self.field_from_state()
    }

    /// Resets every node to `t`.
    pub fn reset(&mut self, t: Kelvin) {
        self.state.iter_mut().for_each(|s| *s = t.0);
    }

    /// Heat carried away by the coolant in the current state, in watts
    /// (sum over cavities of `ṁ·c_p·(T_out − T_in)` per channel row). At
    /// steady state this equals the injected power — the energy-conservation
    /// check used by the tests.
    pub fn fluid_heat_removed(&self) -> f64 {
        if let Some(s) = &self.two_phase_summary {
            return s.heat_absorbed;
        }
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let mut total = 0.0;
        for (z, l) in self.layers.iter().enumerate() {
            let LayerModel::Cavity { spec } = l else {
                continue;
            };
            let n_ch = spec.channel_count(self.height).max(1);
            let q_ch = self.flow.0 / n_ch as f64;
            let n_ch_cell = self.dy / spec.pitch();
            let mdot_cp = self.coolant.density * q_ch * n_ch_cell * self.coolant.specific_heat;
            // The stamped advection operator telescopes along each row to
            // `coeff · (T_last − T_inlet)`, with `coeff` doubled under the
            // linear-profile scheme (where cell temperatures represent the
            // in/out mean rather than the outflow).
            let coeff = match self.params.advection {
                AdvectionScheme::Upwind => mdot_cp,
                AdvectionScheme::LinearProfile => 2.0 * mdot_cp,
            };
            for iy in 0..ny {
                let t_last = self.state[self.node(z, iy, nx - 1)];
                total += coeff * (t_last - self.params.inlet.0);
            }
        }
        total
    }

    /// Mean coolant outflow temperature over all cavities (the quantity a
    /// loop-level heat exchanger sees).
    pub fn fluid_outlet_mean(&self) -> Kelvin {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let mut sum = 0.0;
        let mut count = 0usize;
        for (z, l) in self.layers.iter().enumerate() {
            if !matches!(l, LayerModel::Cavity { .. }) {
                continue;
            }
            for iy in 0..ny {
                sum += self.state[self.node(z, iy, nx - 1)];
                count += 1;
            }
        }
        if count == 0 {
            self.params.inlet
        } else {
            Kelvin(sum / count as f64)
        }
    }

    /// Occupancy and eviction statistics of the bounded operator caches
    /// (diagnostics).
    pub fn cached_operators(&self) -> CacheStats {
        CacheStats {
            steady_entries: self.steady_cache.len(),
            transient_entries: self.transient_cache.len(),
            steady_evictions: self.steady_cache.evictions(),
            transient_evictions: self.transient_cache.evictions(),
            capacity: self.steady_cache.capacity(),
        }
    }

    /// Which solver paths this model has taken so far (diagnostics): full
    /// factorisations vs. numeric refactorisations vs. O(nnz) value
    /// updates, plus the workspace counters behind the zero-allocation
    /// contract.
    pub fn solver_stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.workspace_grows += self.workspace.lu.grows() + self.workspace.iter.grows();
        s
    }

    /// This model's operator-pattern signature (see [`PatternSignature`]).
    pub fn pattern_signature(&self) -> PatternSignature {
        PatternSignature {
            nx: self.grid.nx(),
            ny: self.grid.ny(),
            layer_kinds: self
                .layers
                .iter()
                .map(|l| match l {
                    LayerModel::Solid { .. } => 0,
                    LayerModel::Cavity { .. } => 1,
                })
                .collect(),
            n_tiers: self.source_layers.len(),
            has_sink: self.sink.is_some(),
            upwind: matches!(self.params.advection, AdvectionScheme::Upwind),
            two_phase: self.is_two_phase(),
        }
    }

    /// Snapshots the frozen symbolic analyses for sharing with other
    /// same-pattern models, or `None` if no factorisation has happened
    /// yet.
    pub fn export_analysis(&self) -> Option<SharedAnalysis> {
        let single = self.skeleton.as_ref().and_then(|s| s.symbolic.clone());
        let two_phase = self.tp_skeleton.as_ref().and_then(|s| s.symbolic.clone());
        if single.is_none() && two_phase.is_none() {
            return None;
        }
        Some(SharedAnalysis {
            signature: self.pattern_signature(),
            single,
            two_phase,
        })
    }

    /// Adopts a donor's frozen symbolic analyses so this model's first
    /// solve skips the full pivoting factorisation and goes straight to
    /// numeric refactorisation. Returns `true` if at least one analysis
    /// was installed (signature match and no local analysis yet).
    ///
    /// Safe against bad donors: the refactorisation path verifies the
    /// exact sparsity pattern and transparently re-pivots locally on
    /// mismatch.
    pub fn adopt_analysis(&mut self, analysis: &SharedAnalysis) -> bool {
        if analysis.signature != self.pattern_signature() {
            return false;
        }
        let mut adopted = false;
        if let Some(sym) = &analysis.single {
            if self.skeleton.is_none() {
                self.skeleton = Some(self.build_skeleton());
            }
            let skel = self.skeleton.as_mut().expect("just built");
            if skel.symbolic.is_none() && sym.n() == self.n_nodes {
                skel.symbolic = Some(Arc::clone(sym));
                skel.adopted = true;
                adopted = true;
            }
        }
        if let Some(sym) = &analysis.two_phase {
            if self.is_two_phase() {
                if self.tp_skeleton.is_none() {
                    self.tp_skeleton = Some(self.build_tp_skeleton());
                }
                let skel = self.tp_skeleton.as_mut().expect("just built");
                if skel.symbolic.is_none() && sym.n() == self.n_nodes {
                    skel.symbolic = Some(Arc::clone(sym));
                    skel.adopted = true;
                    adopted = true;
                }
            }
        }
        if adopted {
            self.stats.adopted_symbolics += 1;
        }
        adopted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TwoPhaseCoolant;
    use cmosaic_floorplan::stack::presets;

    fn grid() -> GridSpec {
        GridSpec::new(10, 10).unwrap()
    }

    fn uniform_powers(n_tiers: usize, watts_per_tier: f64, cells: usize) -> Vec<Vec<f64>> {
        (0..n_tiers)
            .map(|_| vec![watts_per_tier / cells as f64; cells])
            .collect()
    }

    #[test]
    fn air_cooled_single_tier_matches_lumped_analysis() {
        // One tier, uniform 20 W: the sink node must sit exactly at
        // ambient + P/G_sink, and the junction above it by the layer
        // resistances.
        let stack = presets::air_cooled_mpsoc(1).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        let field = m
            .steady_state(&uniform_powers(1, 20.0, g.cell_count()))
            .unwrap();
        let sink = field.sink().unwrap();
        let expected_sink = 45.0 + 20.0 / 10.0; // ambient + P/G
        assert!(
            (sink.to_celsius().0 - expected_sink).abs() < 0.05,
            "sink at {sink}, expected {expected_sink} °C"
        );
        // Junction is warmer than the sink but within the 1D estimate.
        let peak = field.max().to_celsius().0;
        assert!(peak > expected_sink);
        assert!(peak < expected_sink + 25.0, "peak {peak} too high");
    }

    #[test]
    fn liquid_cooled_conserves_energy() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
            .unwrap();
        let total = 60.0;
        m.steady_state(&uniform_powers(2, total / 2.0, g.cell_count()))
            .unwrap();
        let removed = m.fluid_heat_removed();
        assert!(
            (removed - total).abs() < 0.01 * total,
            "fluid removes {removed} W of {total} W"
        );
    }

    #[test]
    fn both_advection_schemes_conserve_energy() {
        for scheme in [AdvectionScheme::Upwind, AdvectionScheme::LinearProfile] {
            let stack = presets::liquid_cooled_mpsoc(2).unwrap();
            let g = grid();
            let params = ThermalParams {
                advection: scheme,
                ..Default::default()
            };
            let mut m = ThermalModel::new(&stack, g, params).unwrap();
            m.set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
                .unwrap();
            m.steady_state(&uniform_powers(2, 25.0, g.cell_count()))
                .unwrap();
            let removed = m.fluid_heat_removed();
            assert!(
                (removed - 50.0).abs() < 0.6,
                "{scheme:?}: removed {removed} of 50 W"
            );
        }
    }

    #[test]
    fn caloric_rise_matches_mdot_cp() {
        // Outlet mean ≈ inlet + P/(ρ·c_p·Q_total).
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        let q = VolumetricFlow::from_ml_per_min(32.3);
        m.set_flow_rate(q).unwrap();
        let p_total = 60.0;
        m.steady_state(&uniform_powers(2, p_total / 2.0, g.cell_count()))
            .unwrap();
        let coolant = LiquidProperties::water_at(Kelvin::from_celsius(27.0)).unwrap();
        let dt_expected = p_total / (coolant.volumetric_heat_capacity() * q.0);
        let rise = m.fluid_outlet_mean().0 - Kelvin::from_celsius(27.0).0;
        assert!(
            (rise - dt_expected).abs() < 0.15 * dt_expected,
            "rise {rise} K vs caloric {dt_expected} K"
        );
    }

    #[test]
    fn more_flow_means_cooler_chip() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        let powers = uniform_powers(2, 30.0, g.cell_count());
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(10.0))
            .unwrap();
        let hot = m.steady_state(&powers).unwrap().max();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
            .unwrap();
        let cool = m.steady_state(&powers).unwrap().max();
        assert!(cool.0 < hot.0, "{cool} !< {hot}");
    }

    #[test]
    fn more_power_means_hotter_everywhere() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
            .unwrap();
        let low = m
            .steady_state(&uniform_powers(2, 15.0, g.cell_count()))
            .unwrap();
        let high = m
            .steady_state(&uniform_powers(2, 30.0, g.cell_count()))
            .unwrap();
        for (l, h) in low.cells().iter().zip(high.cells()) {
            assert!(*h >= l - 1e-9);
        }
    }

    #[test]
    fn symmetric_power_gives_symmetric_field_across_y() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
            .unwrap();
        let field = m
            .steady_state(&uniform_powers(2, 20.0, g.cell_count()))
            .unwrap();
        let (nx, ny) = field.grid_dims();
        let layer = field.layer(0);
        for iy in 0..ny / 2 {
            for ix in 0..nx {
                let a = layer[iy * nx + ix];
                let b = layer[(ny - 1 - iy) * nx + ix];
                assert!((a - b).abs() < 1e-6, "asymmetry at ({ix},{iy}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn temperature_rises_downstream() {
        // Under uniform power the junction temperature should increase
        // from inlet (x=0) to outlet (x=nx-1) — the single-phase signature
        // the two-phase §III contrasts against.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
            .unwrap();
        let field = m
            .steady_state(&uniform_powers(2, 30.0, g.cell_count()))
            .unwrap();
        let tier0 = field.tier(0);
        let nx = g.nx();
        let mid_row = (g.ny() / 2) * nx;
        assert!(
            tier0[mid_row + nx - 1] > tier0[mid_row] + 1.0,
            "outlet side must be warmer: {} vs {}",
            tier0[mid_row + nx - 1],
            tier0[mid_row]
        );
    }

    #[test]
    fn transient_approaches_steady_state() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
            .unwrap();
        let powers = uniform_powers(2, 24.0, g.cell_count());
        let steady = m.steady_state(&powers).unwrap().max().0;
        // Restart cold and march.
        m.reset(Kelvin::from_celsius(27.0));
        let mut last = 0.0;
        for _ in 0..400 {
            last = m.step(&powers, 0.1).unwrap().max().0;
        }
        assert!(
            (last - steady).abs() < 0.3,
            "transient {last} K vs steady {steady} K"
        );
    }

    #[test]
    fn transient_is_monotone_under_constant_power_from_cold() {
        let stack = presets::air_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        let powers = uniform_powers(2, 30.0, g.cell_count());
        let mut prev = m.current_field().max().0;
        for _ in 0..50 {
            let now = m.step(&powers, 0.5).unwrap().max().0;
            assert!(now >= prev - 1e-9, "peak must rise monotonically");
            prev = now;
        }
    }

    #[test]
    fn four_tier_liquid_runs_cooler_than_two_tier_at_double_power() {
        // §IV.A: "the system temperature of a 4-tier 3D MPSoC is maintained
        // even lower than the 2-tier" thanks to 3 cavities vs 1.
        let g = grid();
        let mut m2 = ThermalModel::new(
            &presets::liquid_cooled_mpsoc(2).unwrap(),
            g,
            ThermalParams::default(),
        )
        .unwrap();
        let mut m4 = ThermalModel::new(
            &presets::liquid_cooled_mpsoc(4).unwrap(),
            g,
            ThermalParams::default(),
        )
        .unwrap();
        let q = VolumetricFlow::from_ml_per_min(32.3);
        m2.set_flow_rate(q).unwrap();
        m4.set_flow_rate(q).unwrap();
        let t2 = m2
            .steady_state(&uniform_powers(2, 30.0, g.cell_count()))
            .unwrap()
            .max();
        let t4 = m4
            .steady_state(&uniform_powers(4, 30.0, g.cell_count()))
            .unwrap()
            .max();
        assert!(t4.0 < t2.0, "4-tier {t4} should be cooler than 2-tier {t2}");
    }

    #[test]
    fn factorisations_are_cached_per_flow_level() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        let powers = uniform_powers(2, 10.0, g.cell_count());
        for _ in 0..3 {
            for ml in [10.0, 20.0, 32.3] {
                m.set_flow_rate(VolumetricFlow::from_ml_per_min(ml))
                    .unwrap();
                m.steady_state(&powers).unwrap();
            }
        }
        let cache = m.cached_operators();
        assert_eq!(cache.entries(), 3);
        assert_eq!(cache.evictions(), 0);
        // Revisited operating points hit the cache: three operator builds
        // total, not nine.
        assert_eq!(m.solver_stats().value_updates, 3);
    }

    #[test]
    fn one_full_factorisation_serves_every_operating_point() {
        // The tentpole invariant: exactly one full pivoting factorisation
        // per (stack, grid) configuration; every other flow rate, Δt
        // variant and cache rebuild goes through the numeric refactor +
        // value-update path.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        let powers = uniform_powers(2, 10.0, g.cell_count());
        for ml in [10.0, 14.0, 18.0, 22.0, 26.0, 32.3] {
            m.set_flow_rate(VolumetricFlow::from_ml_per_min(ml))
                .unwrap();
            m.steady_state(&powers).unwrap();
            for dt in [0.1, 0.25] {
                m.step(&powers, dt).unwrap();
            }
        }
        let s = m.solver_stats();
        assert_eq!(s.full_factorizations, 1, "{s:?}");
        assert_eq!(s.pivot_fallbacks, 0, "{s:?}");
        // 6 steady + 12 transient operators, all but the first refactored.
        assert_eq!(s.value_updates, 18, "{s:?}");
        assert_eq!(s.refactorizations, 17, "{s:?}");
    }

    #[test]
    fn operator_caches_are_bounded_with_eviction_stats() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        let powers = uniform_powers(2, 10.0, g.cell_count());
        let cap = m.cached_operators().capacity;
        let visited = cap + 4;
        for i in 0..visited {
            let ml = 10.0 + i as f64;
            m.set_flow_rate(VolumetricFlow::from_ml_per_min(ml))
                .unwrap();
            m.steady_state(&powers).unwrap();
        }
        let cache = m.cached_operators();
        assert_eq!(cache.steady_entries, cap, "cache must stay bounded");
        assert_eq!(cache.steady_evictions, (visited - cap) as u64);
        // Evicted operators rebuild through the cheap refactor path, never
        // a new full factorisation.
        assert_eq!(m.solver_stats().full_factorizations, 1);
    }

    #[test]
    fn refactored_operators_match_fresh_models() {
        // A model that has refactored its way through many operating
        // points must agree with a freshly-built model solving the same
        // point directly.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());
        let mut veteran = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        for ml in [10.0, 13.0, 17.0, 21.0, 25.0, 29.0] {
            veteran
                .set_flow_rate(VolumetricFlow::from_ml_per_min(ml))
                .unwrap();
            veteran.steady_state(&powers).unwrap();
        }
        veteran
            .set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
            .unwrap();
        let a = veteran.steady_state(&powers).unwrap();
        assert!(veteran.solver_stats().refactorizations > 0);

        let mut fresh = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        fresh
            .set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
            .unwrap();
        let b = fresh.steady_state(&powers).unwrap();
        for (u, v) in a.cells().iter().zip(b.cells()) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn two_phase_sweeps_share_one_full_factorisation() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, two_phase_params(2500.0)).unwrap();
        let powers = uniform_powers(2, 30.0, g.cell_count());
        m.steady_state(&powers).unwrap();
        m.steady_state(&powers).unwrap();
        let s = m.solver_stats();
        // 2 solves x 6 fixed-point sweeps, one full factorisation total.
        assert_eq!(s.full_factorizations, 1, "{s:?}");
        assert_eq!(s.value_updates, 12, "{s:?}");
        assert_eq!(s.refactorizations, 11, "{s:?}");
    }

    #[test]
    fn input_validation() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(4, 4).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        // Flow not set yet.
        assert!(matches!(
            m.steady_state(&uniform_powers(2, 1.0, 16)),
            Err(ThermalError::InvalidFlow { .. })
        ));
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
            .unwrap();
        // Wrong tier count / cell count.
        assert!(matches!(
            m.steady_state(&uniform_powers(1, 1.0, 16)),
            Err(ThermalError::PowerShape { .. })
        ));
        assert!(matches!(
            m.steady_state(&uniform_powers(2, 1.0, 9)),
            Err(ThermalError::PowerShape { .. })
        ));
        // Bad timestep.
        assert!(matches!(
            m.step(&uniform_powers(2, 1.0, 16), 0.0),
            Err(ThermalError::InvalidTimestep { .. })
        ));
        // Negative flow, and flow on an air-cooled stack.
        assert!(m.set_flow_rate(VolumetricFlow(-1.0)).is_err());
        let ac = presets::air_cooled_mpsoc(2).unwrap();
        let mut mac = ThermalModel::new(&ac, g, ThermalParams::default()).unwrap();
        assert!(mac
            .set_flow_rate(VolumetricFlow::from_ml_per_min(10.0))
            .is_err());
    }

    fn two_phase_params(mass_flux: f64) -> ThermalParams {
        ThermalParams {
            coolant: Coolant::TwoPhase(TwoPhaseCoolant::r134a_30c(mass_flux)),
            ..Default::default()
        }
    }

    #[test]
    fn two_phase_stack_is_near_isothermal() {
        // §III: an evaporating refrigerant absorbs heat "without an
        // increase in its temperature" — the junction field must be far
        // more uniform than the single-phase one at the same power.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let powers = uniform_powers(2, 30.0, g.cell_count());

        let mut water = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        water
            .set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
            .unwrap();
        let wf = water.steady_state(&powers).unwrap();
        let water_span =
            wf.tier_max(0).0 - wf.tier(0).iter().copied().fold(f64::INFINITY, f64::min);

        let mut tp = ThermalModel::new(&stack, g, two_phase_params(2000.0)).unwrap();
        assert!(tp.is_two_phase());
        let tf = tp.steady_state(&powers).unwrap();
        let tp_span = tf.tier_max(0).0 - tf.tier(0).iter().copied().fold(f64::INFINITY, f64::min);

        assert!(
            tp_span < water_span,
            "two-phase junction span {tp_span:.2} K must beat water {water_span:.2} K"
        );
    }

    #[test]
    fn two_phase_absorbs_all_the_power() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        // The mass flux must be sized for the duty: 60 W over 66 channels
        // of 50x100 um needs G ~ 2500 kg/m²s to stay below dry-out.
        let mut m = ThermalModel::new(&stack, g, two_phase_params(2500.0)).unwrap();
        let total = 60.0;
        m.steady_state(&uniform_powers(2, total / 2.0, g.cell_count()))
            .unwrap();
        let s = m.two_phase_summary().expect("summary recorded");
        assert!(
            (s.heat_absorbed - total).abs() < 0.02 * total,
            "refrigerant absorbs {} of {} W",
            s.heat_absorbed,
            total
        );
        assert!((m.fluid_heat_removed() - s.heat_absorbed).abs() < 1e-9);
        assert!(s.dryout_margin > 0.0);
        assert!(s.peak_htc > 1.0e3);
        // The saturation temperature falls along the channel.
        assert!(s.min_saturation.0 < Kelvin::from_celsius(30.0).0);
    }

    #[test]
    fn two_phase_dryout_is_detected() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        // Starved flow at high power must dry out.
        let mut m = ThermalModel::new(&stack, g, two_phase_params(8.0)).unwrap();
        let r = m.steady_state(&uniform_powers(2, 40.0, g.cell_count()));
        assert!(matches!(r, Err(ThermalError::Dryout { .. })), "{r:?}");
    }

    #[test]
    fn two_phase_mode_rejects_flow_and_transient_calls() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let mut m = ThermalModel::new(&stack, g, two_phase_params(300.0)).unwrap();
        assert!(m
            .set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
            .is_err());
        assert!(matches!(
            m.step(&uniform_powers(2, 1.0, 36), 0.1),
            Err(ThermalError::UnsupportedStack { .. })
        ));
        // Two-phase coolant on an air-cooled (cavity-less) stack rejected.
        let ac = presets::air_cooled_mpsoc(2).unwrap();
        assert!(ThermalModel::new(&ac, g, two_phase_params(300.0)).is_err());
    }

    #[test]
    fn two_phase_hot_spot_self_regulates() {
        // A strong hot spot on tier 0: the junction excursion above the
        // surrounding cells must be much smaller than the flux contrast
        // (the boiling HTC rises locally).
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        // The hot row alone carries ~5 W (a ~280 W/cm² cell), so the mass
        // flux must give each channel row enough latent capacity.
        let mut m = ThermalModel::new(&stack, g, two_phase_params(1600.0)).unwrap();
        let mut powers = uniform_powers(2, 8.0, g.cell_count());
        let hot = g.index(4, 4);
        powers[0][hot] += 4.0; // ~33x the background cell power
        let field = m.steady_state(&powers).unwrap();
        let tier0 = field.tier(0);
        let background = tier0[g.index(1, 1)];
        let peak = tier0[hot];
        let rise_ratio =
            (peak - Kelvin::from_celsius(30.0).0) / (background - Kelvin::from_celsius(30.0).0);
        // The hot cell carries ~65x the background cell's power; the
        // boiling HTC's q''-dependence compresses the junction-rise
        // contrast several-fold.
        assert!(
            rise_ratio < 20.0,
            "junction rise ratio {rise_ratio:.1} must stay far below the ~65x flux contrast"
        );
        // A ~280 W/cm² cell held below 110 °C by boiling alone.
        assert!(
            peak < Kelvin::from_celsius(110.0).0,
            "peak {peak} K too hot"
        );
    }

    #[test]
    fn nearby_flow_rates_never_alias_cached_operators() {
        // The cache key is the exact flow bit pattern: two flows one ULP
        // apart are different operating points and must occupy different
        // slots (and likewise for transient Δt).
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        let powers = uniform_powers(2, 10.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(20.0);
        let q_nearby = VolumetricFlow(f64::from_bits(q.0.to_bits() + 1));
        assert_ne!(q.0, q_nearby.0);
        m.set_flow_rate(q).unwrap();
        m.steady_state(&powers).unwrap();
        m.set_flow_rate(q_nearby).unwrap();
        m.steady_state(&powers).unwrap();
        assert_eq!(m.cached_operators().steady_entries, 2);
        assert_eq!(m.solver_stats().value_updates, 2, "no aliased cache hit");
        // Transient keys embed the exact Δt bits: same flow, two nearby
        // Δt values → two operators.
        let dt: f64 = 0.25;
        let dt_nearby = f64::from_bits(dt.to_bits() + 1);
        m.step(&powers, dt).unwrap();
        m.step(&powers, dt_nearby).unwrap();
        assert_eq!(m.cached_operators().transient_entries, 2);
        // And a steady key can never collide with a transient key for the
        // same flow.
        assert_ne!(m.steady_key(), m.transient_key(dt));
    }

    #[test]
    fn warm_transient_path_is_allocation_free() {
        // The zero-allocation contract: once the operator is cached and
        // the workspace is warm, stepping grows no buffer — every
        // sub-step is RHS assembly + triangular solve + ping-pong swap
        // inside persistent storage.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
            .unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());
        let mut field = m.current_field();
        // Warm-up: builds skeleton, factorises, sizes every buffer.
        m.step_into(&powers, 0.25, &mut field).unwrap();
        m.step_into(&powers, 0.25, &mut field).unwrap();
        let warm = m.solver_stats();
        for _ in 0..200 {
            m.step_into(&powers, 0.25, &mut field).unwrap();
        }
        let s = m.solver_stats();
        assert_eq!(
            s.workspace_grows, warm.workspace_grows,
            "warm sub-steps must not grow any workspace buffer: {s:?}"
        );
        assert_eq!(s.in_place_solves, warm.in_place_solves + 200);
        // The whole run still used exactly one full factorisation.
        assert_eq!(s.full_factorizations, 1);
    }

    #[test]
    fn step_into_matches_step_bitwise() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let powers = uniform_powers(2, 15.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(20.0);

        let mut a = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        a.set_flow_rate(q).unwrap();
        let mut b = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        b.set_flow_rate(q).unwrap();

        let mut field = b.current_field();
        for _ in 0..10 {
            let fa = a.step(&powers, 0.25).unwrap();
            b.step_into(&powers, 0.25, &mut field).unwrap();
            assert_eq!(fa.raw(), field.raw(), "identical bits, identical fields");
        }
        assert_eq!(field.grid_dims(), (6, 6));
    }

    #[test]
    fn adopted_analysis_skips_the_full_factorisation() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());

        // Donor: solves once, capturing the symbolic analysis.
        let mut donor = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        donor
            .set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
            .unwrap();
        donor.steady_state(&powers).unwrap();
        let analysis = donor.export_analysis().expect("donor factorised");

        // Adopter at a *different* operating point: zero full
        // factorisations, refactor-only.
        let mut adopter = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        assert!(adopter.adopt_analysis(&analysis));
        adopter
            .set_flow_rate(VolumetricFlow::from_ml_per_min(28.0))
            .unwrap();
        let fa = adopter.steady_state(&powers).unwrap();
        let s = adopter.solver_stats();
        assert_eq!(s.full_factorizations, 0, "{s:?}");
        assert!(s.refactorizations >= 1, "{s:?}");
        assert_eq!(s.adopted_symbolics, 1);

        // The adopted path agrees with an independent model to solver
        // round-off.
        let mut fresh = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        fresh
            .set_flow_rate(VolumetricFlow::from_ml_per_min(28.0))
            .unwrap();
        let ff = fresh.steady_state(&powers).unwrap();
        for (u, v) in fa.cells().iter().zip(ff.cells()) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }

        // A signature mismatch (different grid) refuses adoption.
        let g2 = GridSpec::new(8, 8).unwrap();
        let mut other = ThermalModel::new(&stack, g2, ThermalParams::default()).unwrap();
        assert!(!other.adopt_analysis(&analysis));
        assert_eq!(other.solver_stats().adopted_symbolics, 0);
    }

    fn iterative_params() -> ThermalParams {
        ThermalParams {
            solver: SolverBackend::iterative(),
            ..Default::default()
        }
    }

    #[test]
    fn iterative_backend_matches_direct_steady_state() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let powers = uniform_powers(2, 30.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(25.0);

        let mut direct = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        direct.set_flow_rate(q).unwrap();
        let fd = direct.steady_state(&powers).unwrap();

        let mut iter = ThermalModel::new(&stack, g, iterative_params()).unwrap();
        iter.set_flow_rate(q).unwrap();
        let fi = iter.steady_state(&powers).unwrap();

        for (u, v) in fi.cells().iter().zip(fd.cells()) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
        let s = iter.solver_stats();
        assert_eq!(s.iterative_solves, 1, "{s:?}");
        assert_eq!(s.iterative_fallbacks, 0, "{s:?}");
        assert_eq!(
            s.full_factorizations, 0,
            "a clean iterative run never pays for an LU: {s:?}"
        );
        assert!(s.iterative_iterations >= 1);
    }

    #[test]
    fn iterative_backend_matches_direct_transient_march() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(25.0);

        let mut direct = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        direct.set_flow_rate(q).unwrap();
        let mut iter = ThermalModel::new(&stack, g, iterative_params()).unwrap();
        iter.set_flow_rate(q).unwrap();

        for _ in 0..40 {
            let fd = direct.step(&powers, 0.25).unwrap();
            let fi = iter.step(&powers, 0.25).unwrap();
            for (u, v) in fi.cells().iter().zip(fd.cells()) {
                assert!((u - v).abs() < 1e-4, "{u} vs {v}");
            }
        }
        let s = iter.solver_stats();
        assert_eq!(s.iterative_solves, 40, "{s:?}");
        assert_eq!(s.iterative_fallbacks, 0, "{s:?}");
        assert_eq!(s.full_factorizations, 0, "{s:?}");
    }

    #[test]
    fn warm_iterative_transient_path_is_allocation_free() {
        // The zero-allocation contract holds for the iterative backend
        // too: once the operator, preconditioner and BiCGSTAB workspace
        // are warm, stepping grows no buffer.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let mut m = ThermalModel::new(&stack, g, iterative_params()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
            .unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());
        let mut field = m.current_field();
        m.step_into(&powers, 0.25, &mut field).unwrap();
        m.step_into(&powers, 0.25, &mut field).unwrap();
        let warm = m.solver_stats();
        for _ in 0..100 {
            m.step_into(&powers, 0.25, &mut field).unwrap();
        }
        let s = m.solver_stats();
        assert_eq!(
            s.workspace_grows, warm.workspace_grows,
            "warm iterative sub-steps must not grow any workspace buffer: {s:?}"
        );
        assert_eq!(s.iterative_solves, warm.iterative_solves + 100);
        assert_eq!(s.iterative_fallbacks, 0);
    }

    #[test]
    fn iterative_runs_are_bit_reproducible() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let powers = uniform_powers(2, 25.0, g.cell_count());
        let run = || {
            let mut m = ThermalModel::new(&stack, g, iterative_params()).unwrap();
            m.set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
                .unwrap();
            let mut out = m.steady_state(&powers).unwrap().raw().to_vec();
            for _ in 0..5 {
                out = m.step(&powers, 0.25).unwrap().raw().to_vec();
            }
            out
        };
        assert_eq!(run(), run(), "identical bits run to run");
    }

    #[test]
    fn impossible_iteration_cap_falls_back_to_direct() {
        // A zero-iteration cap can never converge: the first solve lands
        // on the direct-LU fallback, which retires the operator to the
        // direct path — one lazy factorisation, one recorded fallback,
        // and later solves skip the doomed BiCGSTAB attempt entirely.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(6, 6).unwrap();
        let params = ThermalParams {
            solver: SolverBackend::IterativeIlu0 {
                tolerance: 1e-10,
                max_iterations: 0,
            },
            ..Default::default()
        };
        let powers = uniform_powers(2, 15.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(20.0);

        let mut m = ThermalModel::new(&stack, g, params).unwrap();
        m.set_flow_rate(q).unwrap();
        let fa = m.steady_state(&powers).unwrap();
        m.steady_state(&powers).unwrap();
        let s = m.solver_stats();
        assert_eq!(s.iterative_solves, 0, "{s:?}");
        assert_eq!(
            s.iterative_fallbacks, 1,
            "the operator is retired after its first fallback: {s:?}"
        );
        assert_eq!(
            s.full_factorizations, 1,
            "the fallback LU is cached after the first use: {s:?}"
        );

        let mut direct = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        direct.set_flow_rate(q).unwrap();
        let fb = direct.steady_state(&powers).unwrap();
        for (u, v) in fa.cells().iter().zip(fb.cells()) {
            assert!(
                (u - v).abs() < 1e-9,
                "fallback must match direct: {u} vs {v}"
            );
        }
    }

    #[test]
    fn iterative_two_phase_rides_the_direct_path() {
        // The two-phase fixed-point sweeps always use direct LU; selecting
        // the iterative backend must not change their behaviour.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let params = ThermalParams {
            solver: SolverBackend::iterative(),
            ..two_phase_params(2500.0)
        };
        let mut m = ThermalModel::new(&stack, g, params).unwrap();
        let powers = uniform_powers(2, 30.0, g.cell_count());
        m.steady_state(&powers).unwrap();
        let s = m.solver_stats();
        assert_eq!(s.iterative_solves, 0, "{s:?}");
        assert_eq!(s.full_factorizations, 1, "{s:?}");
    }

    #[test]
    fn hot_spot_stays_localised() {
        // Inject power into a single cell of tier 0: the hottest junction
        // cell must be that cell.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
            .unwrap();
        let mut powers = uniform_powers(2, 0.0, g.cell_count());
        let hot_cell = g.index(2, 5);
        powers[0][hot_cell] = 5.0;
        let field = m.steady_state(&powers).unwrap();
        let tier0 = field.tier(0);
        let (imax, _) = tier0
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        assert_eq!(imax, hot_cell);
    }

    fn multigrid_params() -> ThermalParams {
        ThermalParams {
            solver: SolverBackend::multigrid(),
            ..Default::default()
        }
    }

    fn dense(a: &CscMatrix) -> Vec<f64> {
        let (nr, nc) = (a.nrows(), a.ncols());
        let mut d = vec![0.0; nr * nc];
        for c in 0..nc {
            for k in a.col_ptr()[c]..a.col_ptr()[c + 1] {
                d[a.row_idx()[k] * nc + c] += a.values()[k];
            }
        }
        d
    }

    #[test]
    fn stencil_matches_assembled_skeleton_entrywise() {
        // The matrix-free stencil and the triplet-assembled skeleton are
        // two encodings of the same physics: their assembled operators
        // must agree entry by entry (to rounding — the diagonal sums its
        // terms in a different order), for both the steady and the
        // backward-Euler transient operator, and so must the constant
        // right-hand sides (bitwise: every entry is a single product).
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let mut m = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
            .unwrap();
        let mut ws = ModelWorkspace::default();
        m.skeleton = Some(m.build_skeleton());
        for dt in [None, Some(0.25)] {
            m.operator_values_into(m.flow, dt, &mut ws).unwrap();
            let skel = m.skeleton.as_mut().unwrap();
            skel.csc.update_values(&skel.map, &ws.vals);
            let stencil = m.build_stencil(dt).unwrap();
            let da = dense(&m.skeleton.as_ref().unwrap().csc);
            let db = dense(&stencil.assemble());
            assert_eq!(da.len(), db.len());
            for (i, (u, v)) in da.iter().zip(&db).enumerate() {
                let scale = u.abs().max(v.abs()).max(1.0);
                assert!(
                    (u - v).abs() <= 1e-12 * scale,
                    "entry {i} (dt {dt:?}): skeleton {u} vs stencil {v}"
                );
            }
            assert_eq!(
                ws.rhs,
                m.stencil_rhs_base(&stencil),
                "constant RHS must match bitwise (dt {dt:?})"
            );
        }
    }

    #[test]
    fn multigrid_backend_matches_direct_steady_state() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = grid();
        let powers = uniform_powers(2, 30.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(25.0);

        let mut direct = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        direct.set_flow_rate(q).unwrap();
        let fd = direct.steady_state(&powers).unwrap();

        let mut mg = ThermalModel::new(&stack, g, multigrid_params()).unwrap();
        mg.set_flow_rate(q).unwrap();
        let fm = mg.steady_state(&powers).unwrap();

        for (u, v) in fm.cells().iter().zip(fd.cells()) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
        let s = mg.solver_stats();
        assert_eq!(s.iterative_solves, 1, "{s:?}");
        assert_eq!(s.iterative_fallbacks, 0, "{s:?}");
        assert_eq!(
            s.full_factorizations, 0,
            "the fine level is never assembled, let alone factorised: {s:?}"
        );
        assert_eq!(
            s.value_updates, 0,
            "the multigrid happy path never rewrites the skeleton: {s:?}"
        );
        assert!(s.mg_cycles >= 1, "{s:?}");
        assert!(s.mg_smooth_sweeps >= s.mg_cycles, "{s:?}");
        assert!(s.mg_coarse_solves >= s.mg_cycles, "{s:?}");
    }

    #[test]
    fn multigrid_backend_matches_direct_transient_march() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(25.0);

        let mut direct = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        direct.set_flow_rate(q).unwrap();
        let mut mg = ThermalModel::new(&stack, g, multigrid_params()).unwrap();
        mg.set_flow_rate(q).unwrap();

        for _ in 0..40 {
            let fd = direct.step(&powers, 0.25).unwrap();
            let fm = mg.step(&powers, 0.25).unwrap();
            for (u, v) in fm.cells().iter().zip(fd.cells()) {
                assert!((u - v).abs() < 1e-4, "{u} vs {v}");
            }
        }
        let s = mg.solver_stats();
        assert_eq!(s.iterative_solves, 40, "{s:?}");
        assert_eq!(s.iterative_fallbacks, 0, "{s:?}");
        assert_eq!(s.full_factorizations, 0, "{s:?}");
    }

    #[test]
    fn warm_multigrid_transient_path_is_allocation_free() {
        // The zero-allocation contract extends to the multigrid backend:
        // once the stencil, hierarchy and BiCGSTAB workspace are warm,
        // stepping grows no buffer.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let mut m = ThermalModel::new(&stack, g, multigrid_params()).unwrap();
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
            .unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());
        let mut field = m.current_field();
        m.step_into(&powers, 0.25, &mut field).unwrap();
        m.step_into(&powers, 0.25, &mut field).unwrap();
        let warm = m.solver_stats();
        for _ in 0..100 {
            m.step_into(&powers, 0.25, &mut field).unwrap();
        }
        let s = m.solver_stats();
        assert_eq!(
            s.workspace_grows, warm.workspace_grows,
            "warm multigrid sub-steps must not grow any workspace buffer: {s:?}"
        );
        assert_eq!(s.iterative_solves, warm.iterative_solves + 100);
        assert_eq!(s.iterative_fallbacks, 0);
    }

    #[test]
    fn multigrid_runs_are_bit_reproducible() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let powers = uniform_powers(2, 25.0, g.cell_count());
        let run = || {
            let mut m = ThermalModel::new(&stack, g, multigrid_params()).unwrap();
            m.set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
                .unwrap();
            let mut out = m.steady_state(&powers).unwrap().raw().to_vec();
            for _ in 0..5 {
                out = m.step(&powers, 0.25).unwrap().raw().to_vec();
            }
            out
        };
        assert_eq!(run(), run(), "identical bits run to run");
    }

    #[test]
    fn multigrid_on_uncoarsenable_grid_falls_back_to_direct() {
        // A 7×7 in-plane grid cannot halve: the hierarchy build bails
        // out, the fallback is recorded once, and the operating point
        // runs on the direct path — matching a direct model exactly.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(7, 7).unwrap();
        let powers = uniform_powers(2, 15.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(20.0);

        let mut m = ThermalModel::new(&stack, g, multigrid_params()).unwrap();
        m.set_flow_rate(q).unwrap();
        let fa = m.steady_state(&powers).unwrap();
        let s = m.solver_stats();
        assert_eq!(s.iterative_solves, 0, "{s:?}");
        assert_eq!(s.iterative_fallbacks, 1, "{s:?}");
        assert_eq!(s.full_factorizations, 1, "{s:?}");
        assert_eq!(s.mg_cycles, 0, "{s:?}");

        let mut direct = ThermalModel::new(&stack, g, ThermalParams::default()).unwrap();
        direct.set_flow_rate(q).unwrap();
        let fb = direct.steady_state(&powers).unwrap();
        assert_eq!(fa.raw(), fb.raw(), "fallback rides the exact direct path");
    }

    #[test]
    fn warm_ilu_refresh_skips_the_symbolic_analysis() {
        // Operating-point changes under the ILU(0) backend reuse the
        // analysed pattern: the first build analyses, every later build
        // is a value-only refresh — and the refreshed preconditioner
        // behaves exactly like a fresh one (bit-identical fields).
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());
        let flows = [20.0, 26.0, 33.0].map(VolumetricFlow::from_ml_per_min);

        let mut m = ThermalModel::new(&stack, g, iterative_params()).unwrap();
        let mut warm_fields = Vec::new();
        for q in flows {
            m.set_flow_rate(q).unwrap();
            warm_fields.push(m.steady_state(&powers).unwrap().raw().to_vec());
        }
        let s = m.solver_stats();
        assert_eq!(
            s.ilu_refreshes, 2,
            "first build analyses, the rest refresh: {s:?}"
        );
        assert_eq!(s.iterative_fallbacks, 0, "{s:?}");

        for (q, warm) in flows.iter().zip(&warm_fields) {
            let mut fresh = ThermalModel::new(&stack, g, iterative_params()).unwrap();
            fresh.set_flow_rate(*q).unwrap();
            let f = fresh.steady_state(&powers).unwrap();
            assert_eq!(
                f.raw(),
                &warm[..],
                "refresh must be bit-identical to analyse"
            );
        }
    }

    #[test]
    fn cold_iterative_solves_are_history_independent() {
        // The determinism contract behind `warm_start: false` (the
        // default): every solve's Krylov trajectory is a pure function
        // of its operator and right-hand side, so repeating a solve
        // reproduces it bitwise regardless of what was solved before.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let powers = uniform_powers(2, 25.0, g.cell_count());
        let other = uniform_powers(2, 10.0, g.cell_count());
        for params in [iterative_params(), multigrid_params()] {
            let mut m = ThermalModel::new(&stack, g, params).unwrap();
            m.set_flow_rate(VolumetricFlow::from_ml_per_min(22.0))
                .unwrap();
            let f1 = m.steady_state(&powers).unwrap().raw().to_vec();
            m.steady_state(&other).unwrap();
            let f2 = m.steady_state(&powers).unwrap().raw().to_vec();
            assert_eq!(f1, f2, "cold starts must not see solve history");
        }
    }

    #[test]
    fn warm_start_cuts_iterations_and_stays_within_tolerance() {
        // Seeding each transient solve from the previous state must pay
        // off where it matters — a long march of small steps — while the
        // fields stay within the iteration tolerance of the cold runs.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let powers = uniform_powers(2, 20.0, g.cell_count());
        let q = VolumetricFlow::from_ml_per_min(25.0);
        for params in [iterative_params(), multigrid_params()] {
            let warm_params = ThermalParams {
                warm_start: true,
                ..params.clone()
            };
            let mut cold = ThermalModel::new(&stack, g, params).unwrap();
            cold.set_flow_rate(q).unwrap();
            let mut warm = ThermalModel::new(&stack, g, warm_params).unwrap();
            warm.set_flow_rate(q).unwrap();
            for _ in 0..30 {
                let fc = cold.step(&powers, 0.25).unwrap();
                let fw = warm.step(&powers, 0.25).unwrap();
                for (u, v) in fw.cells().iter().zip(fc.cells()) {
                    assert!((u - v).abs() < 1e-5, "{u} vs {v}");
                }
            }
            let sc = cold.solver_stats();
            let sw = warm.solver_stats();
            assert!(
                sw.iterative_iterations < sc.iterative_iterations,
                "warm {} vs cold {} iterations",
                sw.iterative_iterations,
                sc.iterative_iterations
            );
            assert_eq!(sw.iterative_fallbacks, 0);
        }
    }

    #[test]
    fn multigrid_iterations_stay_flat_as_the_grid_refines() {
        // The point of the V-cycle: from 32×32 to 128×128 the BiCGSTAB
        // iteration count under multigrid preconditioning must grow by
        // at most 1.5×, while ILU(0) — whose error reduction is local —
        // degrades by at least 2×.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let q = VolumetricFlow::from_ml_per_min(25.0);
        let iters = |n: usize, params: ThermalParams| {
            let g = GridSpec::new(n, n).unwrap();
            let powers = uniform_powers(2, 30.0, g.cell_count());
            let mut m = ThermalModel::new(&stack, g, params).unwrap();
            m.set_flow_rate(q).unwrap();
            m.steady_state(&powers).unwrap();
            let s = m.solver_stats();
            assert_eq!(s.iterative_fallbacks, 0, "{n}x{n}: {s:?}");
            s.iterative_iterations
        };
        let mg_ratio = iters(128, multigrid_params()) as f64 / iters(32, multigrid_params()) as f64;
        let ilu_ratio =
            iters(128, iterative_params()) as f64 / iters(32, iterative_params()) as f64;
        assert!(
            mg_ratio <= 1.5,
            "multigrid iterations grew {mg_ratio:.2}x from 32^2 to 128^2"
        );
        assert!(
            ilu_ratio >= 2.0,
            "ILU(0) should degrade with resolution (grew {ilu_ratio:.2}x) — \
             if it stopped degrading, the multigrid backend may be obsolete"
        );
    }
}
