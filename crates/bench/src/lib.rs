//! Shared report formatting for the figure/table regeneration benches.
//!
//! Every `[[bench]]` target in this crate is a plain `harness = false`
//! binary that recomputes one table or figure of the paper and prints the
//! same rows/series, alongside the value the paper reports. Run them all
//! with `cargo bench --workspace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a top-level banner naming the reproduced artefact.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len().max(40));
    println!("\n{line}\n{title}\n{line}");
}

/// Prints a section heading.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Prints a `label: value` line.
pub fn kv(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<44} {value}");
}

/// Prints a paper-vs-measured comparison line.
pub fn paper_vs(label: &str, paper: &str, measured: impl std::fmt::Display) {
    println!("  {label:<44} paper: {paper:<18} measured: {measured}");
}

/// A minimal fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        for (w, c) in self.widths.iter_mut().zip(cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Prints the table.
    pub fn print(&self) {
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("  ");
            for (c, w) in cells.iter().zip(&self.widths) {
                line.push_str(&format!("{c:<width$}  ", width = w));
            }
            println!("{}", line.trim_end());
        };
        fmt_row(&self.headers);
        let total: usize = self.widths.iter().sum::<usize>() + 2 * self.widths.len();
        println!("  {}", "-".repeat(total));
        for r in &self.rows {
            fmt_row(r);
        }
    }
}

/// Formats a float with the given precision.
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// `true` unless `CMOSAIC_BENCH_RELAX` is set in the environment.
///
/// The perf benches end with hard wall-clock assertions (speedup floors,
/// baseline comparisons) that are meaningful on a quiet dedicated machine
/// but flaky on shared CI runners; CI sets `CMOSAIC_BENCH_RELAX=1` so
/// record regeneration reports the numbers without a timing-dependent
/// pass/fail. Deterministic assertions (allocation counts, factorisation
/// counters, bit-identity) are never relaxed.
pub fn strict_timing() -> bool {
    std::env::var_os("CMOSAIC_BENCH_RELAX").is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.print(); // must not panic
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
