//! **§II.C pin-fin arrangements** — "We have investigated different pin
//! arrangements (in-line, staggered) with respect to their heat removal
//! performance. Our exploration has shown that circular in-line pins
//! result in low pressure drop at acceptable convective heat transfer,
//! compared to staggered arrangement."

use cmosaic_bench::{banner, f, paper_vs, section, Table};
use cmosaic_hydraulics::pinfin::{Arrangement, PinFinArray};
use cmosaic_hydraulics::LiquidProperties;
use cmosaic_materials::units::Kelvin;

fn main() {
    banner("SecII.C: in-line vs staggered circular pin fins");

    let water = LiquidProperties::water_at(Kelvin::from_celsius(27.0)).expect("in range");
    let array = |a| PinFinArray::new(50e-6, 150e-6, 150e-6, 100e-6, a).expect("valid");
    let inline = array(Arrangement::InLine);
    let staggered = array(Arrangement::Staggered);
    let cavity_length = 11.5e-3;

    let mut t = Table::new(&[
        "u (m/s)",
        "Re_pin",
        "Nu in-line",
        "Nu staggered",
        "dP in-line (bar)",
        "dP staggered (bar)",
        "dP/Nu ratio (stag/inline)",
    ]);
    let mut last_ratio = 0.0;
    for u in [0.3, 0.5, 0.8, 1.2, 1.8] {
        let re = inline.reynolds(u, &water);
        let nu_i = inline.nusselt(u, &water).expect("laminar range");
        let nu_s = staggered.nusselt(u, &water).expect("laminar range");
        let dp_i = inline
            .pressure_drop(u, cavity_length, &water)
            .expect("valid");
        let dp_s = staggered
            .pressure_drop(u, cavity_length, &water)
            .expect("valid");
        last_ratio = (dp_s.0 / nu_s) / (dp_i.0 / nu_i);
        t.row(&[
            f(u, 1),
            f(re, 0),
            f(nu_i, 2),
            f(nu_s, 2),
            f(dp_i.to_bar(), 3),
            f(dp_s.to_bar(), 3),
            f(last_ratio, 2),
        ]);
    }
    t.print();

    section("Paper-vs-measured");
    paper_vs(
        "Staggered transfers more heat",
        "yes",
        "Nu_staggered / Nu_inline = 1.37 at all Re (correlation constants)",
    );
    paper_vs(
        "In-line has lower dP at acceptable heat transfer",
        "in-line preferred",
        format!("staggered costs {}x more dP per unit Nu", f(last_ratio, 2)),
    );
    println!("\n  Conclusion matches SecII.C: low-pressure-drop structures (in-line pins)");
    println!("  should be targeted for 3D MPSoCs.");
}
