//! **Fig. 6** — percentage of time hot spots (>85 °C) are observed, per
//! policy, for the average workload and the maximum-utilization benchmark,
//! on the 2- and 4-tier 3D MPSoCs.

use cmosaic::experiments::fig6_dataset;
use cmosaic::BatchRunner;
use cmosaic_bench::{banner, f, paper_vs, section, Table};
use cmosaic_floorplan::GridSpec;

fn main() {
    banner("Fig. 6: % of time hot spots are observed (threshold 85 C)");

    let grid = GridSpec::new(12, 12).expect("static dims");
    let seconds = 150;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows = fig6_dataset(&BatchRunner::new(threads), seconds, 7, grid).expect("simulation");

    let mut t = Table::new(&[
        "Config",
        "%hot avg/core (avg util)",
        "%hot any (avg util)",
        "%hot avg/core (max util)",
        "%hot any (max util)",
        "Peak (C)",
    ]);
    for r in &rows {
        t.row(&[
            format!("{}-tier {}", r.tiers, r.policy),
            f(r.hotspot_avg_workload_per_core, 1),
            f(r.hotspot_avg_workload_any, 1),
            f(r.hotspot_max_util_per_core, 1),
            f(r.hotspot_max_util_any, 1),
            f(r.peak_celsius, 1),
        ]);
    }
    t.print();

    section("Paper-vs-measured (qualitative series of Fig. 6 + quoted peaks)");
    let find = |tiers: usize, name: &str| {
        rows.iter()
            .find(|r| r.tiers == tiers && r.policy.to_string() == name)
            .expect("config present")
    };
    let ac2 = find(2, "AC_LB");
    let tdvfs2 = find(2, "AC_TDVFS_LB");
    let lc2 = find(2, "LC_LB");
    let fz2 = find(2, "LC_FUZZY");
    let ac4 = find(4, "AC_LB");
    let lc4 = find(4, "LC_LB");
    paper_vs(
        "2-tier AC_LB peak temperature",
        "87 C",
        format!("{} C", f(ac2.peak_celsius, 1)),
    );
    paper_vs(
        "2-tier AC_TDVFS_LB peak temperature",
        "85 C",
        format!("{} C", f(tdvfs2.peak_celsius, 1)),
    );
    paper_vs(
        "TDVFS reduces AC hot spots",
        "yes",
        format!(
            "{} -> {} % (max util, avg/core)",
            f(ac2.hotspot_max_util_per_core, 1),
            f(tdvfs2.hotspot_max_util_per_core, 1)
        ),
    );
    paper_vs(
        "Liquid cooling removes all hot spots",
        "0 %",
        format!(
            "LC_LB {} %, LC_FUZZY {} % (all workloads)",
            f(
                lc2.hotspot_max_util_per_core + lc2.hotspot_avg_workload_per_core,
                1
            ),
            f(
                fz2.hotspot_max_util_per_core + fz2.hotspot_avg_workload_per_core,
                1
            )
        ),
    );
    paper_vs(
        "4-tier AC_LB maximum temperature",
        ">110 C, up to 178 C",
        format!("{} C", f(ac4.peak_celsius, 1)),
    );
    paper_vs(
        "2-tier LC_LB peak temperature",
        "56 C",
        format!("{} C", f(lc2.peak_celsius, 1)),
    );
    paper_vs(
        "LC_FUZZY runs warmer than LC_LB but below 85 C",
        "68 C vs 56 C",
        format!(
            "{} C vs {} C",
            f(fz2.peak_celsius, 1),
            f(lc2.peak_celsius, 1)
        ),
    );
    paper_vs(
        "4-tier LC cooler than 2-tier LC",
        "yes",
        format!(
            "{} C vs {} C",
            f(lc4.peak_celsius, 1),
            f(lc2.peak_celsius, 1)
        ),
    );
    println!(
        "\n  ({} s per run, 12x12 grid per layer, traces: web-server/database/multimedia + max-utilization)",
        seconds
    );
}
