//! **Ablation of the §IV.A claim** — "The reason LC_FUZZY outperforms all
//! other techniques in energy savings is due to the **joint control** of
//! flow rate and DVFS at run-time." We run the proposed controller, the
//! flow-only ablation, and the max-flow baseline on the same stack and
//! workloads, and split the savings into pump-side and chip-side parts.

use cmosaic::policy::PolicyKind;
use cmosaic::{BatchRunner, ScenarioSpec, Study};
use cmosaic_bench::{banner, f, paper_vs, section, Table};
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;

fn main() {
    banner("Ablation: joint flow+DVFS control vs flow-only vs max flow");

    let grid = GridSpec::new(12, 12).expect("static dims");
    let seconds = 120;
    let policies = [
        PolicyKind::LcLb,
        PolicyKind::LcFuzzyFlowOnly,
        PolicyKind::LcFuzzy,
    ];

    // One 9-cell study (3 policies x 3 application workloads), batched:
    // a single full thermal factorisation serves every run.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = Study::new(
        ScenarioSpec::new()
            .tiers(2)
            .seconds(seconds)
            .seed(7)
            .grid(grid),
    )
    .over_policies(policies)
    .over_workloads(WorkloadKind::applications())
    .run(&BatchRunner::new(threads))
    .expect("runs succeed");

    let mut chip = [0.0f64; 3];
    let mut pump = [0.0f64; 3];
    let mut peak = [0.0f64; 3];
    for (spec, outcome) in report.iter() {
        let i = policies
            .iter()
            .position(|&p| p == spec.policy_kind())
            .expect("study policy");
        let m = &outcome.metrics;
        chip[i] += m.chip_energy / 3.0;
        pump[i] += m.pump_energy / 3.0;
        peak[i] = peak[i].max(m.peak_temperature.to_celsius().0);
    }

    let mut t = Table::new(&[
        "Policy",
        "Chip energy (J)",
        "Pump energy (J)",
        "Total (J)",
        "Peak (C)",
    ]);
    for (i, &policy) in policies.iter().enumerate() {
        t.row(&[
            policy.to_string(),
            f(chip[i], 0),
            f(pump[i], 0),
            f(chip[i] + pump[i], 0),
            f(peak[i], 1),
        ]);
    }
    t.print();
    println!("  (2-tier stack, averaged over web-server/database/multimedia, {seconds} s each)");

    section("Decomposition of the LC_FUZZY saving vs LC_LB");
    let total = |i: usize| chip[i] + pump[i];
    let pump_part = (pump[0] - pump[1]) / total(0) * 100.0;
    let dvfs_part = (chip[1] - chip[2]) / total(0) * 100.0;
    let joint = (total(0) - total(2)) / total(0) * 100.0;
    paper_vs(
        "Flow control alone (pump-side saving)",
        "-",
        format!("{} % of the LC_LB total", f(pump_part, 1)),
    );
    paper_vs(
        "Adding DVFS on top (chip-side saving)",
        "-",
        format!("{} % of the LC_LB total", f(dvfs_part, 1)),
    );
    paper_vs(
        "Joint control, total saving",
        "LC_FUZZY outperforms because of joint control",
        format!("{} %", f(joint, 1)),
    );
    println!("\n  Both levers contribute; neither alone reaches the joint saving —");
    println!("  the paper's explanation for why LC_FUZZY beats every other policy.");
}
