//! **§III two-phase vs water** — "The flow rate of the two-phase coolant
//! can be as little as 1/5 to 1/10 that of water … about 80-90 % less
//! energy consumption in the micro-channels", and the latent-heat
//! comparison ("about 150 kJ/kg of R-134a compared to 4.2 kJ/kg·K of
//! water").

use cmosaic_bench::{banner, f, kv, paper_vs, section, Table};
use cmosaic_hydraulics::duct::ChannelGeometry;
use cmosaic_materials::refrigerant::Refrigerant;
use cmosaic_materials::units::{Celsius, Kelvin};
use cmosaic_twophase::compare::compare_for_load;

fn main() {
    banner("SecIII: two-phase refrigerant vs single-phase water");

    section("Latent heat vs specific heat (the SecIII comparison)");
    let r134a = Refrigerant::R134a.properties();
    let h_fg = r134a
        .latent_heat(Celsius(60.0).to_kelvin())
        .expect("in range");
    paper_vs(
        "R-134a latent heat at chip conditions",
        "~150 kJ/kg",
        format!("{} kJ/kg (at 60 C)", f(h_fg / 1e3, 0)),
    );
    kv("Water specific heat", "4.183 kJ/(kg*K) (Table I)");

    let geom = ChannelGeometry::new(85e-6, 560e-6, 12.5e-3).expect("valid");
    let inlet = Kelvin::from_celsius(30.0);
    let load = 100.0;
    let channels = 135;

    section("Equal-load comparison (100 W through 135 channels)");
    let mut t = Table::new(&[
        "Water dT budget (K)",
        "Fluid",
        "Flow ratio (tp/water)",
        "Pump saving (%)",
        "Water exit",
        "Refrigerant exit",
    ]);
    for budget in [3.0, 4.0, 5.0, 6.0] {
        for fluid in [Refrigerant::R134a, Refrigerant::R236fa] {
            let c = compare_for_load(load, channels, &geom, fluid, inlet, budget, 0.55)
                .expect("valid comparison");
            t.row(&[
                f(budget, 0),
                fluid.to_string(),
                format!("1/{}", f(1.0 / c.flow_ratio, 1)),
                f(c.pump_saving_pct, 1),
                format!("+{} K", f(c.water_exit_rise, 1)),
                format!("-{} K", f(c.refrigerant_exit_drop, 2)),
            ]);
        }
    }
    t.print();

    section("Paper-vs-measured");
    let c = compare_for_load(load, channels, &geom, Refrigerant::R134a, inlet, 4.0, 0.55)
        .expect("valid comparison");
    paper_vs(
        "Two-phase flow rate vs water",
        "1/5 to 1/10",
        format!("1/{}", f(1.0 / c.flow_ratio, 1)),
    );
    paper_vs(
        "Pumping-energy saving in the micro-channels",
        "80-90 %",
        format!("{} %", f(c.pump_saving_pct, 1)),
    );
    paper_vs(
        "Refrigerant exit temperature",
        "falls (cooler than inlet)",
        format!(
            "-{} K vs +{} K for water",
            f(c.refrigerant_exit_drop, 2),
            f(c.water_exit_rise, 1)
        ),
    );
}
