//! **Performance** — symbolic/numeric LU split and incremental operator
//! assembly, on the fig6 control-loop scenario (2-tier liquid-cooled stack,
//! 12×12 grid).
//!
//! Times the three ways of producing a solved steady-state operator for a
//! new flow rate:
//!
//! 1. *fresh-factor path* (the pre-split behaviour): rebuild the triplet
//!    assembly, convert to CSC, run a full pivoting factorisation, solve;
//! 2. *refactor path*: O(nnz) value rewrite into the existing CSC + numeric
//!    refactorisation over the frozen symbolic pattern + solve;
//! 3. *control-loop path*: `ThermalModel::steady_state` end-to-end under
//!    the fig6/fig7 flow-modulation schedule (the Table I fuzzy controller
//!    snaps to 8 discrete pump levels), where the shared symbolic object
//!    and the bounded LRU absorb repeated operating points — measured
//!    against paying the fresh pipeline at every epoch.
//!
//! Writes machine-readable results to `BENCH_lu_refactor.json` at the repo
//! root so the perf trajectory is tracked across PRs.

use std::fmt::Write as _;
use std::time::Instant;

use cmosaic::fuzzy::FuzzyController;
use cmosaic_bench::{banner, f, kv, section};
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_sparse::{lu, TripletMatrix};
use cmosaic_thermal::{ThermalModel, ThermalParams};

/// Assembles a thermal-operator-sized system (12×12×5 grid with upwind
/// advection rows, the 2-tier fig6 structure) with flow-scaled advection,
/// mirroring what each control epoch changes.
fn assemble(flow_scale: f64) -> TripletMatrix {
    let (nx, ny, nz) = (12, 12, 5);
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut t = TripletMatrix::with_capacity(n, n, n * 10);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                t.push(i, i, 0.05); // ambient leak keeps it nonsingular
                if x + 1 < nx {
                    t.stamp_conductance(i, idx(x + 1, y, z), 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(i, idx(x, y + 1, z), 0.7);
                }
                if z + 1 < nz {
                    t.stamp_conductance(i, idx(x, y, z + 1), 3.0);
                }
                if x > 0 {
                    // Flow-dependent upwind advection, as the cavity rows
                    // change with every pump setting.
                    t.push(i, idx(x - 1, y, z), -0.2 * flow_scale);
                    t.push(i, i, 0.2 * flow_scale);
                }
            }
        }
    }
    t
}

/// Mean seconds per call of `op` over `iters` calls.
fn time_per_call<R>(iters: usize, mut op: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    banner("Perf: symbolic/numeric LU split + incremental assembly (fig6 stack)");

    // ---- Sparse level: fresh factor vs. refactor on the same operator.
    let flows: Vec<f64> = (0..8).map(|i| 0.4 + 0.25 * i as f64).collect();
    let base = assemble(flows[0]);
    let (mut csc, map) = base.to_csc_with_map();
    let (_, sym) = lu::factor_with_symbolic(&csc, lu::ColumnOrdering::Rcm).expect("nonsingular");
    let rhs: Vec<f64> = (0..csc.nrows())
        .map(|i| (i % 13) as f64 * 0.4 + 1.0)
        .collect();

    let iters = 40;
    let mut which = 0usize;
    let fresh_s = time_per_call(iters, || {
        // The pre-split path: full assembly + conversion + pivoting
        // factorisation + solve, for every flow change.
        which += 1;
        let t = assemble(flows[which % flows.len()]);
        let a = t.to_csc();
        lu::factor(&a)
            .expect("nonsingular")
            .solve(&rhs)
            .expect("sized")
    });
    which = 0;
    let refactor_s = time_per_call(iters, || {
        // The split path: incremental value rewrite + numeric refactor +
        // solve over the frozen pattern.
        which += 1;
        let t = assemble(flows[which % flows.len()]);
        csc.update_values(&map, t.values());
        lu::LuFactors::refactor(&sym, &csc)
            .expect("stable")
            .solve(&rhs)
            .expect("sized")
    });
    // Value rewrite alone (the incremental-assembly cost floor).
    which = 0;
    let update_s = time_per_call(iters, || {
        which += 1;
        let t = assemble(flows[which % flows.len()]);
        csc.update_values(&map, t.values());
    });
    let speedup = fresh_s / refactor_s;

    section("sparse kernel (720-node fig6-sized operator, per flow change)");
    kv("fresh assemble+factor+solve (µs)", f(fresh_s * 1e6, 1));
    kv(
        "incremental update+refactor+solve (µs)",
        f(refactor_s * 1e6, 1),
    );
    kv("value rewrite alone (µs)", f(update_s * 1e6, 1));
    kv("speedup (fresh / refactor path)", f(speedup, 2));

    // ---- Control-loop level: ThermalModel under the fig6/fig7 modulation
    // schedule. The Table I fuzzy controller emits one of 8 discrete pump
    // levels per epoch; a plausible closed-loop trajectory wanders across
    // neighbouring levels and revisits them constantly.
    let ctrl = FuzzyController::table1();
    let schedule: Vec<_> = [
        0usize, 1, 2, 3, 4, 4, 3, 2, 2, 3, 5, 6, 7, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 5, 4, 3,
        2, 1, 1,
    ]
    .iter()
    .map(|&level| ctrl.level_flow(level))
    .collect();
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let grid = GridSpec::new(12, 12).expect("static dims");
    let powers = vec![vec![30.0 / 144.0; 144], vec![10.0 / 144.0; 144]];

    // Pre-split behaviour: every epoch whose flow differs from the cached
    // one pays the full assemble + pivoting-factorisation pipeline (a cold
    // model per epoch reproduces that cost).
    let model_iters = 3;
    let fresh_loop_s = time_per_call(model_iters, || {
        for q in &schedule {
            let mut m = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("model");
            m.set_flow_rate(*q).expect("valid");
            m.steady_state(&powers).expect("solves");
        }
    }) / schedule.len() as f64;

    // Split behaviour: one model rides the shared symbolic + bounded LRU
    // across the whole schedule — revisited pump levels are cache hits,
    // new ones are O(nnz) value rewrites + numeric refactorisations.
    let mut model = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("model");
    model.set_flow_rate(schedule[0]).expect("valid");
    model.steady_state(&powers).expect("solves"); // the one full factorisation
    let loop_s = time_per_call(model_iters, || {
        for q in &schedule {
            model.set_flow_rate(*q).expect("valid");
            model.steady_state(&powers).expect("solves");
        }
    }) / schedule.len() as f64;
    let stats = model.solver_stats();
    let loop_speedup = fresh_loop_s / loop_s;

    section("control loop (fig6 2-tier, 12x12, fuzzy 8-level modulation schedule)");
    kv("fresh-factor path per epoch (µs)", f(fresh_loop_s * 1e6, 1));
    kv("symbolic-split path per epoch (µs)", f(loop_s * 1e6, 1));
    kv("speedup (fresh / split)", f(loop_speedup, 2));
    kv(
        "full factorisations (whole schedule)",
        stats.full_factorizations,
    );
    kv("numeric refactorisations", stats.refactorizations);
    kv("pivot fallbacks", stats.pivot_fallbacks);

    // ---- Machine-readable record for the perf trajectory.
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"scenario\": \"fig6_2tier_12x12_flow_modulation\","
    );
    let _ = writeln!(json, "  \"n_nodes\": {},", csc.nrows());
    let _ = writeln!(json, "  \"nnz\": {},", csc.nnz());
    let _ = writeln!(json, "  \"fresh_factor_us\": {:.3},", fresh_s * 1e6);
    let _ = writeln!(json, "  \"refactor_us\": {:.3},", refactor_s * 1e6);
    let _ = writeln!(json, "  \"value_update_us\": {:.3},", update_s * 1e6);
    let _ = writeln!(json, "  \"sparse_speedup\": {:.3},", speedup);
    let _ = writeln!(
        json,
        "  \"loop_fresh_us_per_epoch\": {:.3},",
        fresh_loop_s * 1e6
    );
    let _ = writeln!(json, "  \"loop_split_us_per_epoch\": {:.3},", loop_s * 1e6);
    let _ = writeln!(json, "  \"loop_speedup\": {:.3},", loop_speedup);
    let _ = writeln!(
        json,
        "  \"full_factorizations\": {},",
        stats.full_factorizations
    );
    let _ = writeln!(json, "  \"refactorizations\": {}", stats.refactorizations);
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lu_refactor.json");
    std::fs::write(out, &json).expect("write BENCH_lu_refactor.json");
    section("record");
    kv("written", out);

    // Wall-clock assertion only on a quiet dedicated machine (CI sets
    // CMOSAIC_BENCH_RELAX so record regeneration cannot flake a build).
    if cmosaic_bench::strict_timing() {
        assert!(
            loop_speedup >= 5.0,
            "repeated steady solves under flow modulation must be >=5x over \
             the fresh-factor path, got {loop_speedup:.2}x"
        );
    }
    assert_eq!(
        stats.full_factorizations, 1,
        "one symbolic analysis serves the loop"
    );
}
