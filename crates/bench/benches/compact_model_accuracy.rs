//! **§II.D compact-model methodology** — 3D-ICE "offers significant
//! speed-ups (up to 975×) over typical commercial CFD … while preserving
//! accuracy (maximum temperature error of 3.4 %)". We reproduce the
//! *methodology*: the production-resolution compact model is compared
//! against a much finer discretisation of the same physics (our stand-in
//! for the CFD reference — see DESIGN.md §3), measuring speed-up and
//! maximum error. An ablation of the advection scheme is included.

use std::time::Instant;

use cmosaic_bench::{banner, f, kv, paper_vs, section, Table};
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_thermal::{AdvectionScheme, TemperatureField, ThermalModel, ThermalParams};

fn run(grid: GridSpec, scheme: AdvectionScheme) -> (TemperatureField, f64) {
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let params = ThermalParams {
        advection: scheme,
        ..Default::default()
    };
    let mut m = ThermalModel::new(&stack, grid, params).expect("model builds");
    m.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    // 40 W on the core tier, 14 W on the cache tier, with a core-shaped
    // concentration: lower half of the die carries 2/3 of the power.
    let n = grid.cell_count();
    let mut core = vec![0.0; n];
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let lower = iy < grid.ny() / 2;
            core[grid.index(ix, iy)] = if lower { 2.0 } else { 1.0 };
        }
    }
    let sum: f64 = core.iter().sum();
    core.iter_mut().for_each(|p| *p *= 40.0 / sum);
    let cache = vec![14.0 / n as f64; n];

    let start = Instant::now();
    let field = m.steady_state(&[core, cache]).expect("solves");
    let elapsed = start.elapsed().as_secs_f64();
    (field, elapsed)
}

/// Max junction temperature of tier 0, in °C.
fn peak(field: &TemperatureField) -> f64 {
    field.tier_max(0).to_celsius().0
}

fn main() {
    banner("SecII.D: compact-model accuracy and speed-up methodology");

    let coarse_grids = [4usize, 8, 12, 16, 24];
    let fine = GridSpec::new(48, 48).expect("static dims");
    let (ref_field, ref_time) = run(fine, AdvectionScheme::Upwind);
    let ref_peak = peak(&ref_field);

    section("Grid refinement against the 48x48 reference");
    let mut t = Table::new(&[
        "Grid",
        "Peak T (C)",
        "Error vs fine (%)",
        "Solve time (ms)",
        "Speed-up vs fine",
    ]);
    for g in coarse_grids {
        let grid = GridSpec::new(g, g).expect("valid dims");
        let (field, time) = run(grid, AdvectionScheme::Upwind);
        let p = peak(&field);
        let t_in = 27.0;
        let err = ((p - ref_peak) / (ref_peak - t_in)).abs() * 100.0;
        t.row(&[
            format!("{g}x{g}"),
            f(p, 2),
            f(err, 2),
            f(time * 1e3, 1),
            format!("{}x", f(ref_time / time, 0)),
        ]);
    }
    t.print();

    section("Paper-vs-measured");
    let (field12, time12) = run(
        GridSpec::new(12, 12).expect("static"),
        AdvectionScheme::Upwind,
    );
    let err12 = ((peak(&field12) - ref_peak) / (ref_peak - 27.0)).abs() * 100.0;
    paper_vs(
        "Compact-model max temperature error",
        "3.4 % (vs CFD)",
        format!("{} % (12x12 vs 48x48, rise-referenced)", f(err12, 2)),
    );
    paper_vs(
        "Speed-up at production resolution",
        "up to 975x (vs CFD)",
        format!(
            "{}x (12x12 vs 48x48 of the same model; a CFD reference would be far costlier)",
            f(ref_time / time12, 0)
        ),
    );

    section("Ablation: advection scheme at 12x12");
    let (up, _) = run(
        GridSpec::new(12, 12).expect("static"),
        AdvectionScheme::Upwind,
    );
    let (lp, _) = run(
        GridSpec::new(12, 12).expect("static"),
        AdvectionScheme::LinearProfile,
    );
    kv("Upwind peak (default)", format!("{} C", f(peak(&up), 2)));
    kv(
        "Linear-profile peak (3D-ICE convention)",
        format!("{} C", f(peak(&lp), 2)),
    );
    kv(
        "Scheme difference",
        format!("{} K", f((peak(&up) - peak(&lp)).abs(), 2)),
    );
}
