//! **§II.C heat-transfer-structure modulation** — "we have been able to
//! report pressure drop and pumping power improvements by a factor of 2
//! and 5": channel-*width* modulation (factor ≈2) and pin-fin *density*
//! modulation (factor ≈5) against the uniform worst-case design.

use cmosaic_bench::{banner, f, kv, paper_vs, section, Table};
use cmosaic_hydraulics::modulation::{
    design_uniform, design_width_modulated, pin_density_gains, width_modulation_gains, HeatZone,
};
use cmosaic_hydraulics::pinfin::{Arrangement, PinFinArray};
use cmosaic_hydraulics::LiquidProperties;
use cmosaic_materials::units::Kelvin;

fn zones() -> Vec<HeatZone> {
    vec![
        HeatZone {
            length: 4.0e-3,
            heat_flux: 15.0e4,
        },
        HeatZone {
            length: 3.5e-3,
            heat_flux: 35.0e4, // hot-spot stripe
        },
        HeatZone {
            length: 4.0e-3,
            heat_flux: 15.0e4,
        },
    ]
}

fn main() {
    banner("SecII.C: width and density modulation vs uniform worst-case design");

    let water = LiquidProperties::water_at(Kelvin::from_celsius(27.0)).expect("in range");
    let widths = [40e-6, 55e-6, 70e-6];
    let height = 100e-6;
    let q_per_channel = 8e-9;
    let budget = 10.0; // K of allowed wall superheat

    section("Micro-channel width modulation");
    kv(
        "Axial profile",
        "15 W/cm2 | 35 W/cm2 hot stripe (30% of length) | 15 W/cm2",
    );
    kv("Candidate widths", "40 / 55 / 70 um (100 um tall channels)");
    kv("Superheat budget", format!("{budget} K"));

    let modulated =
        design_width_modulated(&zones(), &widths, height, q_per_channel, &water, budget)
            .expect("feasible design");
    let uniform = design_uniform(&zones(), &widths, height, q_per_channel, &water, budget)
        .expect("feasible design");

    let mut t = Table::new(&[
        "Design",
        "Zone widths (um)",
        "dP (bar)",
        "HTC/zone (kW/m2K)",
    ]);
    for (name, d) in [
        ("uniform (worst-case)", &uniform),
        ("width-modulated", &modulated),
    ] {
        t.row(&[
            name.to_string(),
            d.widths
                .iter()
                .map(|w| format!("{:.0}", w * 1e6))
                .collect::<Vec<_>>()
                .join("/"),
            f(d.pressure_drop.to_bar(), 3),
            d.htc
                .iter()
                .map(|h| format!("{:.1}", h / 1e3))
                .collect::<Vec<_>>()
                .join("/"),
        ]);
    }
    t.print();

    let gains = width_modulation_gains(&zones(), &widths, height, q_per_channel, &water, budget)
        .expect("feasible design");
    paper_vs(
        "Width modulation: pressure-drop improvement",
        "factor of 2",
        format!("{}x", f(gains.pressure_ratio, 2)),
    );

    section("Pin-fin density modulation");
    let dense = PinFinArray::new(50e-6, 90e-6, 90e-6, 100e-6, Arrangement::InLine).expect("valid");
    let sparse =
        PinFinArray::new(50e-6, 300e-6, 300e-6, 100e-6, Arrangement::InLine).expect("valid");
    kv(
        "Dense array (over the hot spot)",
        "50 um pins @ 90 um pitch",
    );
    kv("Sparse array (elsewhere)", "50 um pins @ 300 um pitch");
    kv("Hot-spot fraction of the cavity", "10 %");
    let u = 0.5;
    let h_dense = dense.heat_transfer_coefficient(u, &water).expect("valid");
    let h_sparse = sparse.heat_transfer_coefficient(u, &water).expect("valid");
    kv(
        "HTC dense / sparse (x area enhancement)",
        format!(
            "{} / {} kW/m2K (x{} / x{})",
            f(h_dense / 1e3, 1),
            f(h_sparse / 1e3, 1),
            f(dense.area_enhancement(), 1),
            f(sparse.area_enhancement(), 1)
        ),
    );
    let gains = pin_density_gains(0.1, &dense, &sparse, u, 1.0e-2, &water).expect("valid");
    paper_vs(
        "Density modulation: pumping-power improvement",
        "factor of 5",
        format!("{}x", f(gains.pump_ratio, 2)),
    );
}
