//! **Performance** — the design-space optimizer on the fig6-style
//! "minimum pump energy meeting 85 °C" reference space.
//!
//! Three measurements:
//!
//! 1. *early-abort savings*: the exhaustive grid with the in-loop
//!    infeasibility abort vs. the same grid running every design to its
//!    full budget — epochs simulated and wall clock (the answer must be
//!    bit-identical either way);
//! 2. *evaluations-to-optimum*: exhaustive grid vs. seeded coordinate
//!    descent — how many design evaluations each strategy pays before
//!    the known optimum is in hand;
//! 3. *thread scaling*: the aborting grid at 1 vs 8 `BatchRunner`
//!    workers, with the bit-identity contract asserted on the full
//!    report.
//!
//! Writes machine-readable results to `BENCH_opt.json` at the repo root.
//! Wall-clock assertions only fire on a quiet dedicated machine (see
//! `strict_timing`); deterministic assertions (same optimum everywhere,
//! abort saves epochs, bit-identity) always apply.

use std::fmt::Write as _;
use std::time::Instant;

use cmosaic::batch::BatchRunner;
use cmosaic::optimize::{
    Constraints, CoordinateDescent, DesignAxis, DesignSpace, GridSearch, OptimizeReport, Optimizer,
};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::ScenarioSpec;
use cmosaic_bench::{banner, f, kv, section, strict_timing};
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::{Celsius, VolumetricFlow};
use cmosaic_power::trace::WorkloadKind;

const SECONDS: usize = 30;

fn space() -> DesignSpace {
    let ml = VolumetricFlow::from_ml_per_min;
    DesignSpace::new(
        ScenarioSpec::new()
            .policy(PolicyKind::LcLb)
            .workload(WorkloadKind::MaxUtilization)
            .grid(GridSpec::new(12, 12).expect("static dims"))
            .seconds(SECONDS)
            .seed(42),
    )
    .with_axis(DesignAxis::tiers([2, 4]))
    .with_axis(DesignAxis::flow_rates([
        ml(6.0),
        ml(10.0),
        ml(14.0),
        ml(20.0),
        ml(26.0),
        ml(32.3),
    ]))
}

fn optimizer<'a>(runner: &'a BatchRunner, abort: bool) -> Optimizer<'a> {
    let opt = Optimizer::new(space(), Constraints::peak_below(Celsius(85.0)), runner);
    if abort {
        opt
    } else {
        opt.without_early_abort()
    }
}

fn timed(
    opt: &Optimizer<'_>,
    strategy: &mut dyn cmosaic::optimize::SearchStrategy,
) -> (OptimizeReport, f64) {
    let t = Instant::now();
    let report = opt.run(strategy).expect("optimization completes");
    (report, t.elapsed().as_secs_f64())
}

fn main() {
    banner("Perf: design-space optimizer (grid vs adaptive, early abort, thread scaling)");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runner = BatchRunner::new(host);
    let n_designs = space().len();

    // ---- 1. Early abort on vs off, exhaustive grid.
    let (grid_abort, wall_abort) = timed(&optimizer(&runner, true), &mut GridSearch);
    let (grid_full, wall_full) = timed(&optimizer(&runner, false), &mut GridSearch);
    let best = grid_abort.best.as_ref().expect("feasible design exists");

    section(&format!(
        "early abort ({n_designs} designs x {SECONDS} s, {host} workers)"
    ));
    kv(
        "epochs run (abort / full budget)",
        format!("{} / {}", grid_abort.epochs_run, grid_abort.epochs_budget),
    );
    kv(
        "early-abort savings",
        format!("{:.1} %", grid_abort.early_abort_savings() * 100.0),
    );
    kv("wall with abort (ms)", f(wall_abort * 1e3, 0));
    kv("wall without abort (ms)", f(wall_full * 1e3, 0));
    kv("optimum", &best.label);

    // ---- 2. Evaluations-to-optimum, grid vs coordinate descent.
    let (descent, wall_descent) = timed(
        &optimizer(&runner, true),
        &mut CoordinateDescent::seeded(3).restarts(2),
    );
    section("evaluations to optimum (grid vs coordinate descent)");
    kv(
        "grid evaluations / to optimum",
        format!(
            "{} / {}",
            grid_abort.n_evaluations(),
            grid_abort.evals_to_best.expect("grid finds it")
        ),
    );
    kv(
        "descent evaluations / to optimum",
        format!(
            "{} / {}",
            descent.n_evaluations(),
            descent.evals_to_best.expect("descent finds it")
        ),
    );
    kv("descent wall (ms)", f(wall_descent * 1e3, 0));

    // ---- 3. Thread scaling + bit identity on the aborting grid.
    let (serial, wall_1) = timed(&optimizer(&BatchRunner::new(1), true), &mut GridSearch);
    let (eight, wall_8) = timed(&optimizer(&BatchRunner::new(8), true), &mut GridSearch);
    let speedup8 = wall_1 / wall_8;
    section(&format!("thread scaling (host parallelism {host})"));
    kv("1 thread wall (ms)", f(wall_1 * 1e3, 0));
    kv("8 threads wall (ms)", f(wall_8 * 1e3, 0));
    kv("speedup 8 vs 1", f(speedup8, 2));

    // ---- Machine-readable record.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scenario\": \"fig6_min_pump_energy_85C_12x12\",");
    let _ = writeln!(json, "  \"n_designs\": {n_designs},");
    let _ = writeln!(json, "  \"seconds_per_design\": {SECONDS},");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(
        json,
        "  \"grid_evaluations\": {},",
        grid_abort.n_evaluations()
    );
    let _ = writeln!(
        json,
        "  \"grid_evals_to_best\": {},",
        grid_abort.evals_to_best.expect("grid finds it")
    );
    let _ = writeln!(
        json,
        "  \"descent_evaluations\": {},",
        descent.n_evaluations()
    );
    let _ = writeln!(
        json,
        "  \"descent_evals_to_best\": {},",
        descent.evals_to_best.expect("descent finds it")
    );
    let _ = writeln!(json, "  \"epochs_run_abort\": {},", grid_abort.epochs_run);
    let _ = writeln!(json, "  \"epochs_budget\": {},", grid_abort.epochs_budget);
    let _ = writeln!(
        json,
        "  \"early_abort_savings\": {:.3},",
        grid_abort.early_abort_savings()
    );
    let _ = writeln!(json, "  \"wall_ms_grid_abort\": {:.3},", wall_abort * 1e3);
    let _ = writeln!(json, "  \"wall_ms_grid_full\": {:.3},", wall_full * 1e3);
    let _ = writeln!(json, "  \"wall_ms_descent\": {:.3},", wall_descent * 1e3);
    let _ = writeln!(json, "  \"wall_ms_1_threads\": {:.3},", wall_1 * 1e3);
    let _ = writeln!(json, "  \"wall_ms_8_threads\": {:.3},", wall_8 * 1e3);
    let _ = writeln!(json, "  \"speedup_8_vs_1\": {speedup8:.3}");
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_opt.json");
    std::fs::write(out, &json).expect("write BENCH_opt.json");
    section("record");
    kv("written", out);

    // ---- Hard guarantees.
    assert!(
        grid_abort.epochs_run < grid_abort.epochs_budget,
        "the early abort must truncate infeasible designs"
    );
    assert_eq!(grid_full.epochs_run, grid_full.epochs_budget);
    assert_eq!(
        grid_abort.best, grid_full.best,
        "the abort must not change the optimum"
    );
    assert_eq!(grid_abort.front, grid_full.front);
    assert_eq!(
        serial, eight,
        "the optimize report must be bit-identical at 1 vs 8 threads"
    );
    assert_eq!(serial.best, grid_abort.best);
    assert_eq!(
        descent.best.as_ref().map(|b| &b.design),
        grid_abort.best.as_ref().map(|b| &b.design),
        "grid and descent must agree on the optimum"
    );
    assert!(descent.n_evaluations() <= grid_abort.n_evaluations());
    if strict_timing() {
        assert!(
            wall_abort < wall_full,
            "aborting grid ({:.0} ms) must beat the full-budget grid ({:.0} ms)",
            wall_abort * 1e3,
            wall_full * 1e3
        );
        if host >= 8 {
            assert!(
                speedup8 >= 2.0,
                "8-thread optimization must be >=2x over 1 thread on an >=8-way host, \
                 got {speedup8:.2}x"
            );
        }
    }
}
