//! **§II.C scalability claim** — "We compare the maximal junction
//! temperature rise in a chip stack with a 1 cm² foot print and aligned
//! hot spots of 250 W/cm² on three active tiers. Thus, we obtain an
//! acceptable 55 K in case of inter-tier cooling with four fluid cavities,
//! compared to the catastrophic 223 K with back-side cooling."

use cmosaic_bench::{banner, f, kv, paper_vs, section};
use cmosaic_floorplan::stack::{CavitySpec, HeatSinkSpec, StackBuilder};
use cmosaic_floorplan::{Floorplan, GridSpec, Rect};
use cmosaic_materials::solids::SolidMaterial;
use cmosaic_materials::units::{Kelvin, VolumetricFlow};
use cmosaic_thermal::{ThermalModel, ThermalParams};

const FOOTPRINT: f64 = 10.0e-3; // 1 cm x 1 cm
const TIERS: usize = 3;
const HOT_FLUX: f64 = 250.0e4; // W/m²
const BACKGROUND_FLUX: f64 = 25.0e4;
const WIRING: f64 = 0.1e-3;
const DIE: f64 = 0.15e-3;

fn blank_tier() -> Floorplan {
    let outline = Rect::new(0.0, 0.0, FOOTPRINT, FOOTPRINT).expect("static");
    Floorplan::new("scalability-tier", outline, vec![]).expect("empty plan is valid")
}

/// Cell power maps: a 2x2 mm hot spot at 250 W/cm² centred on each tier,
/// 25 W/cm² elsewhere — aligned across tiers (the worst case).
fn power_maps(grid: GridSpec) -> Vec<Vec<f64>> {
    let cell = FOOTPRINT / grid.nx() as f64;
    let cell_area = cell * cell;
    let hot_half = 1.0e-3; // 2 mm square
    let centre = FOOTPRINT / 2.0;
    let mut map = vec![0.0; grid.cell_count()];
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let x = (ix as f64 + 0.5) * cell;
            let y = (iy as f64 + 0.5) * cell;
            let hot = (x - centre).abs() < hot_half && (y - centre).abs() < hot_half;
            map[grid.index(ix, iy)] = if hot { HOT_FLUX } else { BACKGROUND_FLUX } * cell_area;
        }
    }
    vec![map; TIERS]
}

fn main() {
    banner("SecII.C: inter-tier cooling scalability (3 tiers x 250 W/cm2 hot spots)");

    let grid = GridSpec::new(20, 20).expect("static dims");
    let maps = power_maps(grid);
    let total: f64 = maps.iter().flatten().sum();
    let inlet = Kelvin::from_celsius(27.0);

    // --- Inter-tier cooling: a cavity below each tier plus one on top
    // (four fluid cavities for three active tiers, as in refs. [6][7]).
    let mut b = StackBuilder::new("intertier-3tier", FOOTPRINT, FOOTPRINT);
    for _ in 0..TIERS {
        b.cavity(CavitySpec::table1());
        b.tier(blank_tier(), WIRING, DIE);
    }
    b.cavity(CavitySpec::table1());
    let intertier = b.build().expect("valid stack");

    let mut m =
        ThermalModel::new(&intertier, grid, ThermalParams::default()).expect("model builds");
    m.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("Table I max flow");
    let field = m.steady_state(&maps).expect("solves");
    let intertier_rise = field.max() - inlet;

    // --- Back-side cooling: same tiers, no cavities, a cold plate on top
    // (a strong single-sided sink: 50 W/K).
    let mut b = StackBuilder::new("backside-3tier", FOOTPRINT, FOOTPRINT);
    for _ in 0..TIERS {
        b.tier(blank_tier(), WIRING, DIE);
    }
    b.solid(SolidMaterial::thermal_interface(), 0.03e-3);
    b.sink(HeatSinkSpec {
        conductance: 50.0,
        capacitance: 140.0,
        ambient: inlet,
    });
    let backside = b.build().expect("valid stack");
    let mut m = ThermalModel::new(&backside, grid, ThermalParams::default()).expect("model builds");
    let field = m.steady_state(&maps).expect("solves");
    let backside_rise = field.max() - inlet;

    section("Setup");
    kv("Footprint", "10 x 10 mm (1 cm2)");
    kv("Active tiers", TIERS);
    kv(
        "Hot spots",
        format!("2 x 2 mm @ {} W/cm2, aligned on all tiers", HOT_FLUX / 1e4),
    );
    kv(
        "Background flux",
        format!("{} W/cm2", BACKGROUND_FLUX / 1e4),
    );
    kv("Total power", format!("{} W", f(total, 1)));
    kv("Inter-tier cavities", intertier.cavity_count());
    kv("Coolant", "water, 32.3 ml/min per cavity, 27 C inlet");

    section("Paper-vs-measured: maximal junction temperature rise");
    paper_vs(
        "Inter-tier cooling (4 cavities)",
        "55 K",
        format!("{} K", f(intertier_rise, 1)),
    );
    paper_vs(
        "Back-side cooling only",
        "223 K (catastrophic)",
        format!("{} K", f(backside_rise, 1)),
    );
    paper_vs(
        "Back-side / inter-tier ratio",
        &format!("{}x", f(223.0 / 55.0, 1)),
        format!("{}x", f(backside_rise / intertier_rise, 1)),
    );
    println!("\n  Inter-tier liquid cooling scales with the number of tiers; back-side");
    println!("  cooling forces every tier's heat through the single top surface.");
}
