//! **§III applied to the 3D stack** — the paper's forward-looking claim:
//! two-phase inter-tier cooling gives a 3D MPSoC a near-isothermal
//! junction field at a fraction of the water flow. This bench runs the
//! *same* 2-tier stack and power maps with (a) single-phase water at the
//! Table I maximum flow and (b) evaporating R134a, and compares peak
//! temperature, junction uniformity and coolant mass flow.

use cmosaic_bench::{banner, f, kv, paper_vs, section, Table};
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_thermal::{Coolant, ThermalModel, ThermalParams, TwoPhaseCoolant};

fn main() {
    banner("SecIII in the stack: water vs evaporating R134a inter-tier cooling");

    let grid = GridSpec::new(12, 12).expect("static dims");
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let n = grid.cell_count();
    // 48 W core tier + 12 W cache tier with a hot stripe on the cores.
    let mut core = vec![0.0; n];
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let hot = iy < grid.ny() / 3;
            core[grid.index(ix, iy)] = if hot { 2.0 } else { 1.0 };
        }
    }
    let s: f64 = core.iter().sum();
    core.iter_mut().for_each(|p| *p *= 48.0 / s);
    let maps = vec![core, vec![12.0 / n as f64; n]];

    // --- Water at the Table I maximum flow.
    let mut water =
        ThermalModel::new(&stack, grid, ThermalParams::default()).expect("model builds");
    water
        .set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    let wf = water.steady_state(&maps).expect("solves");
    let w_peak = wf.max().to_celsius().0;
    let w_span = wf.tier_max(0).0 - wf.tier(0).iter().copied().fold(f64::INFINITY, f64::min);
    let w_mass_flow = VolumetricFlow::from_ml_per_min(32.3).to_mass_flow(998.0).0;

    // --- Two-phase R134a sized for the duty with a healthy dry-out margin.
    let g_flux = 3000.0;
    let tp_spec = TwoPhaseCoolant::r134a_30c(g_flux);
    let params = ThermalParams {
        coolant: Coolant::TwoPhase(tp_spec),
        ..Default::default()
    };
    let mut tp = ThermalModel::new(&stack, grid, params).expect("model builds");
    let tf = tp.steady_state(&maps).expect("solves");
    let t_peak = tf.max().to_celsius().0;
    let t_span = tf.tier_max(0).0 - tf.tier(0).iter().copied().fold(f64::INFINITY, f64::min);
    let summary = *tp.two_phase_summary().expect("summary recorded");
    let ch_area = 50e-6 * 100e-6;
    let tp_mass_flow = g_flux * ch_area * 66.0;

    section("Same stack, same 60 W power maps");
    let mut t = Table::new(&[
        "Coolant",
        "Peak T (C)",
        "Tier-0 span (K)",
        "Mass flow (g/s per cavity)",
    ]);
    t.row(&[
        "water, 32.3 ml/min".into(),
        f(w_peak, 1),
        f(w_span, 1),
        f(w_mass_flow * 1e3, 2),
    ]);
    t.row(&[
        format!("R134a two-phase, G={g_flux} kg/m2s"),
        f(t_peak, 1),
        f(t_span, 1),
        f(tp_mass_flow * 1e3, 2),
    ]);
    t.print();

    section("Two-phase state");
    kv(
        "Heat absorbed by refrigerant",
        format!("{} W", f(summary.heat_absorbed, 1)),
    );
    kv("Worst exit quality", f(summary.max_exit_quality, 3));
    kv("Dry-out margin", f(summary.dryout_margin, 3));
    kv(
        "Peak boiling HTC",
        format!("{} kW/m2K", f(summary.peak_htc / 1e3, 1)),
    );
    kv(
        "Coldest saturation temperature",
        format!(
            "{} C (refrigerant cools along the channel)",
            f(summary.min_saturation.to_celsius().0, 2)
        ),
    );

    section("Paper-vs-measured (SecIII qualitative claims, in-stack)");
    paper_vs(
        "High uniformity in temperature",
        "two-phase wins",
        format!("span {} K vs {} K for water", f(t_span, 1), f(w_span, 1)),
    );
    println!(
        "  Mass flows are comparable here ({} vs {} g/s) because the water side runs at\n  \
         its worst-case maximum; the 1/5-1/10 flow advantage appears when water is\n  \
         sized for a tight uniformity budget (see the twophase_vs_water bench).",
        f(tp_mass_flow * 1e3, 2),
        f(w_mass_flow * 1e3, 2)
    );
    paper_vs(
        "Dry-out must be avoided",
        "hard constraint",
        format!("margin {}", f(summary.dryout_margin, 2)),
    );
}
