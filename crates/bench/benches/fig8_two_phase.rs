//! **Fig. 8** — local hot-spot test of the silicon micro-evaporator:
//! heat flux, heat-transfer coefficient, and fluid/wall/base temperatures
//! per sensor row (R245fa in 135 × 85 µm channels, 5×7 heater array with a
//! 30.2 W/cm² hot row against a 2 W/cm² background).

use cmosaic_bench::{banner, f, kv, paper_vs, section, Table};
use cmosaic_twophase::MicroEvaporator;

fn main() {
    banner("Fig. 8: local hot spot test for a silicon micro-evaporator");

    let evaporator = MicroEvaporator::fig8();
    let result = evaporator
        .solve(500)
        .expect("Fig. 8 operating point is valid");

    let mut t = Table::new(&[
        "Sensor row",
        "Heat flux (W/cm2)",
        "HTC (W/m2K)",
        "Fluid T (C)",
        "Wall T (C)",
        "Base T (C)",
    ]);
    for r in &result.rows {
        t.row(&[
            r.row.to_string(),
            f(r.heat_flux / 1e4, 1),
            f(r.htc, 0),
            f(r.fluid.to_celsius().0, 2),
            f(r.wall.to_celsius().0, 2),
            f(r.base.to_celsius().0, 2),
        ]);
    }
    t.print();

    section("Operating point");
    kv("Working fluid", "R245fa");
    kv("Channels", format!("{} x 85 um", evaporator.channels()));
    kv(
        "Total heater power",
        format!("{} W", f(result.total_power, 1)),
    );
    kv("Outlet quality", f(result.outlet_quality, 3));
    kv("Dry-out margin", f(result.dryout_margin, 3));
    kv(
        "Channel pressure drop",
        format!("{} bar", f(result.pressure_drop.to_bar(), 4)),
    );

    section("Paper-vs-measured");
    paper_vs(
        "Inlet saturation temperature",
        "30 C",
        format!("{} C", f(result.inlet_fluid.to_celsius().0, 2)),
    );
    paper_vs(
        "Outlet fluid temperature (colder than inlet!)",
        "29.5 C",
        format!("{} C", f(result.outlet_fluid.to_celsius().0, 2)),
    );
    let htc_ratio = result.rows[2].htc / result.rows[0].htc;
    paper_vs(
        "HTC under hot spot vs background",
        "8x higher",
        format!("{}x", f(htc_ratio, 1)),
    );
    let sh = |i: usize| result.rows[i].wall.0 - result.rows[i].fluid.0;
    paper_vs(
        "Wall superheat under hot spot vs background",
        "2x (15x with water)",
        format!("{}x (flux contrast 15.1x)", f(sh(2) / sh(0), 1)),
    );
    paper_vs(
        "Pressure drop (Agostini bound, 255 W/cm2)",
        "< 0.9 bar",
        format!("{} bar", f(result.pressure_drop.to_bar(), 3)),
    );
}
