//! **Fig. 7** — normalized energy consumption (system + pump, left axis)
//! and performance degradation (right axis) for every policy, plus the
//! abstract's headline LC_FUZZY savings.

use cmosaic::experiments::{fig7_dataset, headline_savings};
use cmosaic::BatchRunner;
use cmosaic_bench::{banner, f, paper_vs, section, Table};
use cmosaic_floorplan::GridSpec;

fn main() {
    banner("Fig. 7: normalized energy and performance degradation");

    let grid = GridSpec::new(12, 12).expect("static dims");
    let seconds = 150;
    let runner = BatchRunner::new(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let rows = fig7_dataset(&runner, seconds, 7, grid).expect("simulation");

    let mut t = Table::new(&[
        "Config",
        "System energy (norm)",
        "Pump energy (norm)",
        "Perf loss avg (%)",
        "Perf loss max (%)",
    ]);
    for r in &rows {
        t.row(&[
            format!("{}-tier {}", r.tiers, r.policy),
            f(r.system_energy_norm, 3),
            f(r.pump_energy_norm, 3),
            f(r.perf_loss_mean_pct, 3),
            f(r.perf_loss_max_pct, 3),
        ]);
    }
    t.print();
    println!("  (normalized to the 2-tier AC_LB system energy, averaged over the three application workloads)");

    section("LC_FUZZY vs LC_LB (Fig. 7 discussion)");
    let get = |tiers: usize, name: &str| {
        rows.iter()
            .find(|r| r.tiers == tiers && r.policy.to_string() == name)
            .expect("config present")
    };
    for tiers in [2usize, 4] {
        let lb = get(tiers, "LC_LB");
        let fz = get(tiers, "LC_FUZZY");
        let sys_saving = (1.0 - fz.system_energy_norm / lb.system_energy_norm) * 100.0;
        let pump_saving = (1.0 - fz.pump_energy_norm / lb.pump_energy_norm) * 100.0;
        let paper = if tiers == 2 {
            ("14 %", "50 %")
        } else {
            ("18 %", "52 %")
        };
        paper_vs(
            &format!("{tiers}-tier system-energy saving (fuzzy vs LC_LB)"),
            paper.0,
            format!("{} %", f(sys_saving, 1)),
        );
        paper_vs(
            &format!("{tiers}-tier cooling-energy saving (fuzzy vs LC_LB)"),
            paper.1,
            format!("{} %", f(pump_saving, 1)),
        );
    }

    section("Headline savings vs worst-case maximum flow (abstract)");
    for tiers in [2usize, 4] {
        let h = headline_savings(&runner, tiers, seconds, 7, grid).expect("simulation");
        paper_vs(
            &format!("{tiers}-tier cooling-energy saving"),
            "up to 67 %",
            format!("{} %", f(h.cooling_saving_pct, 1)),
        );
        paper_vs(
            &format!("{tiers}-tier system-energy saving"),
            "up to 30 %",
            format!("{} %", f(h.system_saving_pct, 1)),
        );
        paper_vs(
            &format!("{tiers}-tier fuzzy peak temperature"),
            "< 85 C always",
            format!("{} C", f(h.fuzzy_peak_celsius, 1)),
        );
    }

    section("Performance degradation (Fig. 7 right axis)");
    let fz2 = get(2, "LC_FUZZY");
    paper_vs(
        "LC_FUZZY performance degradation",
        "<= 0.01 % (negligible)",
        format!("{} %", f(fz2.perf_loss_max_pct, 4)),
    );
    let lc2 = get(2, "LC_LB");
    paper_vs(
        "Liquid-cooled systems suffer no degradation",
        "0 %",
        format!("{} %", f(lc2.perf_loss_max_pct, 4)),
    );
}
