//! **Performance** — the per-block actuation layer: zero-allocation
//! epoch pipeline and the pinned migration-vs-flow-modulation study.
//!
//! Three measurements:
//!
//! 1. *epoch allocations*: the full warm control loop — sensing, policy
//!    decision, per-block power re-pricing from `BlockState`, power-map
//!    scatter, thermal sub-steps — on a 4-tier migration scenario. A
//!    counting global allocator compares the allocation totals of a
//!    10-epoch and a 50-epoch window: equal totals prove the 40 extra
//!    epochs allocated nothing.
//! 2. *actuation strategies*: flow modulation only (`LC_FUZZY_FLOW`) vs.
//!    task migration at maximum flow (`LC_MIG`) vs. the combination
//!    (`LC_MIG_FUZZY`), on identical traces — pump energy at the thermal
//!    constraint. The combined controller must spend the least.
//! 3. *determinism*: the same study at 1 and 8 worker threads must give
//!    bit-identical slots.
//!
//! Writes machine-readable results to `BENCH_policies.json` at the repo
//! root (the nightly perf gate checks the pump-energy ordering and the
//! bit-identity flag).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cmosaic::batch::BatchRunner;
use cmosaic::experiments::{actuation_dataset, actuation_study};
use cmosaic::policy::{make_policy, PolicyKind};
use cmosaic::sim::{SimConfig, Simulator};
use cmosaic_bench::{banner, f, kv, section, strict_timing};
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;
use cmosaic_power::PowerAllocator;

/// Counts every heap allocation so the zero-allocation contract is
/// measured, not assumed.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The operating point pinned by `tests/integration_migration.rs` and
/// `examples/policy_actuation.rs`.
const SEED: u64 = 42;

fn main() {
    banner("Perf: per-block actuation layer (zero-alloc epochs + policy study)");

    // ---- 1. Allocations per warm control epoch, migration policy.
    //
    // `LC_MIG` commands the fixed maximum flow every epoch, so the
    // thermal-operator cache never faults and the measurement isolates
    // the control loop itself: observation refill, hottest-first
    // migration, per-block `BlockState` re-pricing (with
    // temperature-dependent leakage), power-map scatter and four
    // backward-Euler sub-steps.
    let stack = presets::liquid_cooled_mpsoc(4).expect("preset");
    let cores = 16;
    let trace = WorkloadKind::WebServer.generate(cores, 200, SEED);
    let mut sim = Simulator::new(
        &stack,
        make_policy(PolicyKind::LcMigration { seed: SEED }, cores),
        trace,
        PowerAllocator::niagara(),
        SimConfig::default(),
    )
    .expect("simulator builds");
    sim.initialize().expect("initializes");
    // Warm-up: factorise the operator, size every scratch buffer.
    sim.run(5).expect("warm-up runs");

    let a0 = allocations();
    let t0 = Instant::now();
    sim.run(10).expect("short window runs");
    let short_window = allocations() - a0;
    let short_s = t0.elapsed().as_secs_f64();

    let a1 = allocations();
    let t1 = Instant::now();
    sim.run(50).expect("long window runs");
    let long_window = allocations() - a1;
    let long_s = t1.elapsed().as_secs_f64();
    let epoch_us = (long_s - short_s).max(0.0) / 40.0 * 1e6;

    section("warm epoch pipeline (4-tier migration, 16 cores, 12x12 grid)");
    kv("allocations, 10-epoch window", short_window);
    kv("allocations, 50-epoch window", long_window);
    kv(
        "allocations per epoch (delta/40)",
        f((long_window as f64 - short_window as f64) / 40.0, 3),
    );
    kv("epoch latency (µs, marginal)", f(epoch_us, 1));

    // ---- 2. The pinned actuation study: pump energy at the constraint.
    let seconds = 40;
    let grid = GridSpec::new(10, 10).expect("static dims");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows = actuation_dataset(&BatchRunner::new(host), seconds, SEED, grid)
        .expect("actuation study runs");
    let flow_only = &rows[0];
    let migration = &rows[1];
    let combined = &rows[2];
    let saving_pct = (1.0 - combined.pump_energy / flow_only.pump_energy) * 100.0;

    section(format!("actuation strategies (4-tier WebServer, {seconds} s)").as_str());
    for r in &rows {
        kv(
            &format!("{} pump J / peak °C", r.policy),
            format!("{:.1} / {:.1}", r.pump_energy, r.peak_celsius),
        );
    }
    kv("combined saving vs flow-only (%)", f(saving_pct, 2));

    // ---- 3. Bit-identity of the study across worker threads.
    let study = actuation_study(seconds, SEED, grid);
    let one = study.run(&BatchRunner::new(1)).expect("runs at 1 thread");
    let eight = study.run(&BatchRunner::new(8)).expect("runs at 8 threads");
    let identical = one.slots() == eight.slots();
    section("determinism");
    kv("slots bit-identical at 1 vs 8 threads", identical);

    // ---- Machine-readable record.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scenario\": \"actuation_4tier_webserver_10x10\",");
    let _ = writeln!(json, "  \"seconds\": {seconds},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"allocs_10_epoch_window\": {short_window},");
    let _ = writeln!(json, "  \"allocs_50_epoch_window\": {long_window},");
    let _ = writeln!(
        json,
        "  \"allocs_per_epoch\": {:.3},",
        (long_window as f64 - short_window as f64) / 40.0
    );
    let _ = writeln!(json, "  \"epoch_marginal_us\": {epoch_us:.3},");
    let _ = writeln!(
        json,
        "  \"flow_only_pump_j\": {:.3},",
        flow_only.pump_energy
    );
    let _ = writeln!(
        json,
        "  \"migration_pump_j\": {:.3},",
        migration.pump_energy
    );
    let _ = writeln!(json, "  \"combined_pump_j\": {:.3},", combined.pump_energy);
    let _ = writeln!(json, "  \"combined_saving_vs_flow_pct\": {saving_pct:.3},");
    let _ = writeln!(
        json,
        "  \"flow_only_peak_c\": {:.3},",
        flow_only.peak_celsius
    );
    let _ = writeln!(
        json,
        "  \"migration_peak_c\": {:.3},",
        migration.peak_celsius
    );
    let _ = writeln!(json, "  \"combined_peak_c\": {:.3},", combined.peak_celsius);
    let _ = writeln!(json, "  \"bit_identical_1_vs_8\": {identical}");
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_policies.json");
    std::fs::write(out, &json).expect("write BENCH_policies.json");
    section("record");
    kv("written", out);

    // ---- Hard guarantees.
    assert_eq!(
        long_window, short_window,
        "warm epochs must allocate nothing: 10-epoch window {short_window}, \
         50-epoch window {long_window}"
    );
    assert!(identical, "study must be bit-identical at 1 vs 8 threads");
    for r in &rows {
        assert!(
            r.peak_celsius < 85.0,
            "{} breaches the constraint: {:.1} °C",
            r.policy,
            r.peak_celsius
        );
    }
    assert!(
        combined.pump_energy < migration.pump_energy
            && combined.pump_energy < flow_only.pump_energy,
        "combined control must spend the least pump energy: \
         flow-only {:.1} J, migration {:.1} J, combined {:.1} J",
        flow_only.pump_energy,
        migration.pump_energy,
        combined.pump_energy
    );
    // Latency is environment-sensitive; only gate it on a quiet host.
    if strict_timing() {
        assert!(
            epoch_us < 5_000.0,
            "a warm control epoch should stay well under 5 ms, got {epoch_us:.0} µs"
        );
    }
}
