//! **Table I** — thermal and floorplan parameters deployed in the 3D MPSoC
//! model, plus the derived quantities and the Fig. 1 stack inventories.

use cmosaic_bench::{banner, f, kv, section, Table};
use cmosaic_floorplan::niagara;
use cmosaic_floorplan::stack::{presets, CavitySpec, HeatSinkSpec, LayerKind};
use cmosaic_hydraulics::duct::ChannelGeometry;
use cmosaic_hydraulics::pump::PumpMap;
use cmosaic_hydraulics::LiquidProperties;
use cmosaic_materials::solids::SolidMaterial;
use cmosaic_materials::units::{Kelvin, VolumetricFlow};
use cmosaic_materials::water::Water;

fn main() {
    banner("Table I: thermal and floorplan parameters (+ derived values)");

    section("Material parameters (as modelled)");
    let si = SolidMaterial::silicon();
    let wiring = SolidMaterial::wiring();
    let water = Water::table1();
    let mut t = Table::new(&["Parameter", "Value", "Paper (Table I)"]);
    t.row(&[
        "Silicon conductivity".into(),
        format!("{} W/(m·K)", si.thermal_conductivity()),
        "130 W/(m·K)".into(),
    ]);
    t.row(&[
        "Silicon capacitance".into(),
        format!("{} J/(m³·K)", si.volumetric_heat_capacity()),
        "1635660 J/(m³·K)".into(),
    ]);
    t.row(&[
        "Wiring layer conductivity".into(),
        format!("{} W/(m·K)", wiring.thermal_conductivity()),
        "2.25 W/(m·K)".into(),
    ]);
    t.row(&[
        "Wiring layer capacitance".into(),
        format!("{} J/(m³·K)", wiring.volumetric_heat_capacity()),
        "2174502 J/(m³·K)".into(),
    ]);
    t.row(&[
        "Water conductivity".into(),
        format!("{} W/(m·K)", water.thermal_conductivity()),
        "0.6 W/(m·K)".into(),
    ]);
    t.row(&[
        "Water capacitance".into(),
        format!("{} J/(kg·K)", water.specific_heat()),
        "4183 J/(kg·K)".into(),
    ]);
    let sink = HeatSinkSpec::table1();
    t.row(&[
        "Heat sink conductivity (air only)".into(),
        format!("{} W/K", sink.conductance),
        "10 W/K".into(),
    ]);
    t.row(&[
        "Heat sink capacitance (air only)".into(),
        format!("{} J/K", sink.capacitance),
        "140 J/K".into(),
    ]);
    t.print();

    section("Geometry parameters");
    let cavity = CavitySpec::table1();
    let mut g = Table::new(&["Parameter", "Value", "Paper (Table I)"]);
    g.row(&[
        "Die thickness".into(),
        format!("{} mm", presets::DIE_THICKNESS * 1e3),
        "0.15 mm".into(),
    ]);
    g.row(&[
        "Area per core".into(),
        format!("{} mm²", niagara::CORE_AREA * 1e6),
        "10 mm²".into(),
    ]);
    g.row(&[
        "Area per L2 cache".into(),
        format!("{} mm²", niagara::L2_AREA * 1e6),
        "19 mm²".into(),
    ]);
    g.row(&[
        "Total area of each layer".into(),
        format!("{} mm²", niagara::DIE_WIDTH * niagara::DIE_HEIGHT * 1e6),
        "115 mm²".into(),
    ]);
    g.row(&[
        "Inter-tier material thickness".into(),
        format!("{} mm", presets::WIRING_THICKNESS * 1e3),
        "0.1 mm".into(),
    ]);
    g.row(&[
        "Channel width".into(),
        format!("{} mm", cavity.channel_width() * 1e3),
        "0.05 mm".into(),
    ]);
    g.row(&[
        "Channel pitch".into(),
        format!("{} mm", cavity.pitch() * 1e3),
        "0.15 mm".into(),
    ]);
    g.row(&[
        "Flow rate range (per cavity)".into(),
        "10 - 32.3 ml/min".into(),
        "10 - 32.3 ml/min".into(),
    ]);
    let pump = PumpMap::table1();
    g.row(&[
        "Pumping network power".into(),
        format!(
            "{} - {} W",
            pump.power(VolumetricFlow::from_ml_per_min(10.0)).0,
            pump.power(VolumetricFlow::from_ml_per_min(32.3)).0
        ),
        "3.5 - 11.176 W".into(),
    ]);
    g.print();

    section("Derived cavity quantities");
    kv(
        "Channels per cavity (10 mm die / 0.15 mm pitch)",
        cavity.channel_count(niagara::DIE_HEIGHT),
    );
    kv("Cavity porosity (fluid fraction)", f(cavity.porosity(), 3));
    kv(
        "Channel hydraulic diameter",
        format!("{} um", f(cavity.hydraulic_diameter() * 1e6, 1)),
    );
    let geom = ChannelGeometry::table1();
    let coolant = LiquidProperties::water_at(Kelvin::from_celsius(27.0)).expect("in range");
    for ml in [10.0, 32.3] {
        let q = VolumetricFlow::from_ml_per_min(ml);
        let q_ch = q.0 / cavity.channel_count(niagara::DIE_HEIGHT) as f64;
        let re = geom.reynolds(q_ch, &coolant);
        let mcp = coolant.volumetric_heat_capacity() * q.0;
        kv(
            &format!("At {ml} ml/min: per-channel Re / cavity m*cp"),
            format!("{} / {} W/K", f(re, 1), f(mcp, 3)),
        );
    }

    section("Fig. 1 stack inventories (layers, bottom to top)");
    for stack in [
        presets::liquid_cooled_mpsoc(2).expect("preset"),
        presets::liquid_cooled_mpsoc(4).expect("preset"),
        presets::air_cooled_mpsoc(2).expect("preset"),
        presets::air_cooled_mpsoc(4).expect("preset"),
    ] {
        let mut inv = Table::new(&["#", "Layer", "Thickness (mm)"]);
        for (i, l) in stack.layers().iter().enumerate() {
            let desc = match &l.kind {
                LayerKind::Solid { material } => material.name().to_string(),
                LayerKind::Source { tier, .. } => {
                    format!(
                        "wiring+sources of tier {tier} ({})",
                        stack.tiers()[*tier].name()
                    )
                }
                LayerKind::Cavity { spec } => format!(
                    "micro-channel cavity ({} channels)",
                    spec.channel_count(stack.height())
                ),
            };
            inv.row(&[i.to_string(), desc, f(l.thickness * 1e3, 2)]);
        }
        println!(
            "\n  {} ({} cavities, sink: {})",
            stack.name(),
            stack.cavity_count(),
            if stack.sink().is_some() { "yes" } else { "no" }
        );
        inv.print();
    }
}
