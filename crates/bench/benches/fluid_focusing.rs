//! **§II.C / Fig. 4 fluid focusing** — "The local flow rate on a hot spot
//! location can be further increased with micro-channel networks … in
//! combination with guiding structures. … However, we only consider this
//! option … at a high heat flux contrast, since the aggregate flow rate is
//! reduced."

use cmosaic_bench::{banner, f, kv, paper_vs, section, Table};
use cmosaic_hydraulics::FlowNetwork;
use cmosaic_materials::units::Pressure;

fn main() {
    banner("Fig. 4: heat removal of a hot spot - uniform vs fluid-focused cavity");

    let (nx, ny) = (12, 9);
    let g_edge = 1.0e-12; // m³/(s·Pa) per lattice edge
    let p_in = Pressure::from_bar(1.0);
    let hot_rows = [4usize]; // the hot-spot row (die centre)

    let uniform = FlowNetwork::uniform(nx, ny, g_edge).expect("valid network");
    let base = uniform.solve(p_in).expect("solves");

    let mut focused = FlowNetwork::uniform(nx, ny, g_edge).expect("valid network");
    focused.apply_focusing(&hot_rows, 2.5, 0.4);
    let sol = focused.solve(p_in).expect("solves");

    section("Setup");
    kv("Cavity lattice", format!("{nx} x {ny} junctions"));
    kv(
        "Guiding structures",
        "hot row widened x2.5, periphery choked x0.4",
    );
    kv("Drive pressure", format!("{} bar", f(p_in.to_bar(), 1)));

    section("Per-row mid-cavity flow (the Fig. 4 visual)");
    let mut t = Table::new(&["Row", "Uniform (nl/s)", "Focused (nl/s)", "Gain"]);
    for iy in 0..ny {
        let qu = base.row_flow_at_mid(iy) * 1e12;
        let qf = sol.row_flow_at_mid(iy) * 1e12;
        let marker = if hot_rows.contains(&iy) {
            " <- hot spot"
        } else {
            ""
        };
        t.row(&[
            format!("{iy}{marker}"),
            f(qu, 2),
            f(qf, 2),
            format!("{}x", f(qf / qu, 2)),
        ]);
    }
    t.print();

    section("Paper-vs-measured");
    let hot_gain = sol.row_flow_at_mid(hot_rows[0]) / base.row_flow_at_mid(hot_rows[0]);
    let aggregate = sol.total_flow() / base.total_flow();
    paper_vs(
        "Hot-spot local flow rate",
        "increased",
        format!("{}x the uniform cavity", f(hot_gain, 2)),
    );
    paper_vs(
        "Aggregate flow rate",
        "reduced",
        format!("{}x the uniform cavity", f(aggregate, 2)),
    );
    println!("\n  Focusing trades aggregate flow for hot-spot flow, which is why SecII.C");
    println!("  reserves it for tiers with a high heat-flux contrast.");
}
