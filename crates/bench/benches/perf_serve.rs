//! **Performance** — the `cmosaic-serve` daemon under concurrent load:
//! request coalescing and cross-request caching against the one-process-
//! per-request baseline.
//!
//! Three measurements:
//!
//! 1. *cold burst*: 8 concurrent NDJSON clients fire overlapping
//!    requests (72 scenario slots, 12 distinct specs, 2 distinct
//!    operator patterns) at a freshly started daemon over its unix
//!    socket — wall clock, requests/sec, and the coalescing invariant:
//!    the whole burst performs exactly one full factorisation per
//!    distinct *pattern*, not per request;
//! 2. *warm burst*: the identical burst again — every slot must come out
//!    of the result cache with zero additional factorisations, and every
//!    response byte must match the cold run (the determinism contract);
//! 3. *isolated baseline*: each distinct spec solo in a fresh
//!    `BatchRunner`, the way a one-shot process would run it; the
//!    amortisation ratio (isolated factorisations the burst *would* have
//!    paid / factorisations the daemon actually performed) is the
//!    subsystem's reason to exist.
//!
//! Writes machine-readable results to `BENCH_serve.json` at the repo
//! root. The factorisation/caching asserts are deterministic and always
//! enforced; wall-clock numbers are recorded but never gated here (the
//! nightly job gates the deterministic counters from the JSON record).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use cmosaic::{BatchRunner, ScenarioSpec};
use cmosaic_bench::{banner, f, kv, section};
use cmosaic_floorplan::GridSpec;
use cmosaic_serve::json::Json;
use cmosaic_serve::scheduler::SchedulerConfig;
use cmosaic_serve::server::{Server, ServerConfig};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 3;
const SPECS_PER_REQUEST: usize = 3;
const SEEDS_PER_PATTERN: u64 = 6;
const PATTERNS: [usize; 2] = [2, 4]; // tiers — the pattern axis

/// The spec family: 2 operator patterns x 6 seeds = 12 distinct specs.
fn family_spec(k: usize) -> ScenarioSpec {
    let tiers = PATTERNS[k / SEEDS_PER_PATTERN as usize % PATTERNS.len()];
    let seed = 100 + (k as u64 % SEEDS_PER_PATTERN);
    ScenarioSpec::new()
        .tiers(tiers)
        .grid(GridSpec::new(6, 6).expect("static dims"))
        .seconds(2)
        .seed(seed)
}

fn family_size() -> usize {
    PATTERNS.len() * SEEDS_PER_PATTERN as usize
}

/// The spec indices of one request — overlapping slices of the family,
/// deterministic in (client, request).
fn request_specs(client: usize, request: usize) -> Vec<usize> {
    (0..SPECS_PER_REQUEST)
        .map(|s| (client * 5 + request * 7 + s * 3) % family_size())
        .collect()
}

/// The protocol line for one request.
fn request_line(client: usize, request: usize) -> String {
    let specs: Vec<String> = request_specs(client, request)
        .into_iter()
        .map(|k| {
            let tiers = PATTERNS[k / SEEDS_PER_PATTERN as usize % PATTERNS.len()];
            let seed = 100 + (k as u64 % SEEDS_PER_PATTERN);
            format!(r#"{{"tiers":{tiers},"grid":{{"nx":6,"ny":6}},"seconds":2,"seed":{seed}}}"#)
        })
        .collect();
    format!(
        r#"{{"op":"run","id":"c{client}r{request}","specs":[{}]}}"#,
        specs.join(",")
    )
}

/// Fires every client's requests concurrently; returns (wall, responses
/// in (client, request) order).
fn burst(path: &std::path::Path) -> (Duration, Vec<String>) {
    let started = Instant::now();
    let mut responses = vec![String::new(); CLIENTS * REQUESTS_PER_CLIENT];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..CLIENTS {
            handles.push(scope.spawn(move || {
                let mut stream = UnixStream::connect(path).expect("client connects");
                let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
                let mut done_lines = Vec::new();
                for request in 0..REQUESTS_PER_CLIENT {
                    writeln!(stream, "{}", request_line(client, request)).expect("request written");
                    stream.flush().expect("request flushed");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("done line");
                    done_lines.push(line.trim().to_string());
                }
                done_lines
            }));
        }
        for (client, handle) in handles.into_iter().enumerate() {
            for (request, line) in handle
                .join()
                .expect("client thread")
                .into_iter()
                .enumerate()
            {
                responses[client * REQUESTS_PER_CLIENT + request] = line;
            }
        }
    });
    (started.elapsed(), responses)
}

fn main() {
    banner("Perf: cmosaic-serve coalescing daemon vs one-shot baseline");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    kv("host parallelism", host);

    let path = std::env::temp_dir().join(format!("cmosaic-perf-serve-{}.sock", std::process::id()));
    let server = Server::start(ServerConfig {
        socket: Some(path.clone()),
        http: None,
        scheduler: SchedulerConfig {
            threads: host.min(4),
            window: Duration::from_millis(20),
            ..SchedulerConfig::default()
        },
    })
    .expect("daemon starts");

    let total_requests = CLIENTS * REQUESTS_PER_CLIENT;
    let total_slots = total_requests * SPECS_PER_REQUEST;
    section("cold burst (daemon just started, every cache empty)");
    let (cold_wall, cold) = burst(&path);
    let cold_stats = server.stats();
    kv("requests", total_requests);
    kv("scenario slots requested", total_slots);
    kv("distinct specs", family_size());
    kv("distinct patterns", PATTERNS.len());
    kv(
        "wall",
        format!("{} ms", f(cold_wall.as_secs_f64() * 1e3, 1)),
    );
    kv(
        "requests/sec",
        f(total_requests as f64 / cold_wall.as_secs_f64(), 1),
    );
    kv("coalesced batches", cold_stats.cache.batches);
    kv("full factorisations", cold_stats.solver.full_factorizations);
    kv("adopted symbolics", cold_stats.solver.adopted_symbolics);
    kv("result-cache misses", cold_stats.cache.result_misses);

    section("warm burst (identical requests, caches hot)");
    let (warm_wall, warm) = burst(&path);
    let warm_stats = server.stats();
    kv(
        "wall",
        format!("{} ms", f(warm_wall.as_secs_f64() * 1e3, 1)),
    );
    kv(
        "requests/sec",
        f(total_requests as f64 / warm_wall.as_secs_f64(), 1),
    );
    kv(
        "result-cache hits",
        warm_stats.cache.result_hits - cold_stats.cache.result_hits,
    );
    let warm_factorizations =
        warm_stats.solver.full_factorizations - cold_stats.solver.full_factorizations;
    kv("additional factorisations", warm_factorizations);

    section("isolated baseline (one fresh BatchRunner per distinct spec)");
    let solo_started = Instant::now();
    let mut solo_factorizations = 0u64;
    for k in 0..family_size() {
        let scenario = family_spec(k).build().expect("spec builds");
        let report = BatchRunner::new(1).run_scenarios(std::slice::from_ref(&scenario));
        solo_factorizations += report.total_full_factorizations();
    }
    let solo_wall = solo_started.elapsed();
    let solo_per_spec = solo_wall.as_secs_f64() / family_size() as f64;
    // What the burst would have cost one-shot: one factorisation per
    // requested slot, not per distinct pattern.
    let isolated_factorizations = total_slots as u64 * solo_factorizations / family_size() as u64;
    let amortization =
        isolated_factorizations as f64 / cold_stats.solver.full_factorizations.max(1) as f64;
    kv(
        "solo wall per spec",
        format!("{} ms", f(solo_per_spec * 1e3, 2)),
    );
    kv(
        "isolated factorisations for the burst",
        isolated_factorizations,
    );
    kv(
        "daemon factorisations for the burst",
        cold_stats.solver.full_factorizations,
    );
    kv(
        "factorisation amortisation",
        format!("{}x", f(amortization, 1)),
    );

    // ---- Machine-readable record.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"requests\": {total_requests},");
    let _ = writeln!(json, "  \"scenario_slots\": {total_slots},");
    let _ = writeln!(json, "  \"distinct_specs\": {},", family_size());
    let _ = writeln!(json, "  \"distinct_patterns\": {},", PATTERNS.len());
    let _ = writeln!(
        json,
        "  \"cold_wall_ms\": {:.3},",
        cold_wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "  \"warm_wall_ms\": {:.3},",
        warm_wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "  \"cold_requests_per_sec\": {:.3},",
        total_requests as f64 / cold_wall.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "  \"warm_requests_per_sec\": {:.3},",
        total_requests as f64 / warm_wall.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "  \"coalesced_batches\": {},",
        cold_stats.cache.batches
    );
    let _ = writeln!(
        json,
        "  \"served_full_factorizations\": {},",
        cold_stats.solver.full_factorizations
    );
    let _ = writeln!(
        json,
        "  \"isolated_full_factorizations\": {isolated_factorizations},"
    );
    let _ = writeln!(json, "  \"amortization_ratio\": {amortization:.3},");
    let _ = writeln!(
        json,
        "  \"result_cache_hits\": {},",
        warm_stats.cache.result_hits
    );
    let _ = writeln!(json, "  \"solo_ms_per_spec\": {:.3}", solo_per_spec * 1e3);
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    section("record");
    kv("written", out);

    // ---- Hard guarantees (all deterministic — never relaxed).
    assert_eq!(
        cold_stats.solver.full_factorizations,
        PATTERNS.len() as u64,
        "the cold burst must factorise once per distinct pattern, not per request"
    );
    assert_eq!(
        cold_stats.cache.result_misses,
        family_size() as u64,
        "each distinct spec must be simulated exactly once across the burst"
    );
    assert_eq!(
        warm_factorizations, 0,
        "the warm burst must be served entirely from the caches"
    );
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c, w, "warm responses must be byte-identical to cold ones");
    }
    // Spot-check the responses are real results, not errors.
    for line in &cold {
        let event = Json::parse(line).expect("done line parses");
        assert_eq!(event.get("event").and_then(Json::as_str), Some("done"));
        for slot in event
            .get("results")
            .and_then(Json::as_arr)
            .expect("results")
        {
            assert_eq!(slot.get("ok").and_then(Json::as_bool), Some(true));
        }
    }
    assert!(
        amortization >= PATTERNS.len() as f64,
        "amortisation collapsed: {amortization:.1}x"
    );

    // Clean shutdown, so the record is only written by healthy runs.
    server.shutdown();
    server.wait();
    assert!(!path.exists(), "socket removed on clean shutdown");
    println!(
        "\ncoalescing invariant held: {} slots, {} patterns, {} factorisations",
        total_slots,
        PATTERNS.len(),
        cold_stats.solver.full_factorizations
    );
}
