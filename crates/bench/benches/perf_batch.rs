//! **Performance** — zero-allocation transient hot path + parallel batch
//! sweep engine, on the fig6 scenario family.
//!
//! Three measurements:
//!
//! 1. *hot path allocations*: heap allocations per transient sub-step on
//!    the warm 720-node fig6 scenario, allocating `step` API vs in-place
//!    `step_into` (a counting global allocator observes the truth — the
//!    in-place path must be exactly zero);
//! 2. *per-epoch latency*: the PR 1 fig6 flow-modulation steady loop
//!    (8-level fuzzy schedule) re-timed on the workspace-routed solve
//!    path, against the `loop_split_us_per_epoch` baseline recorded in
//!    `BENCH_lu_refactor.json`;
//! 3. *batch scaling*: the full fig6 scenario matrix (7 configurations ×
//!    4 workloads) swept by `BatchRunner` at 1/2/4/8 threads — wall
//!    clock, scaling efficiency, and the shared-analysis invariant (one
//!    full factorisation per pattern group across the whole batch).
//!
//! Writes machine-readable results to `BENCH_batch_sweep.json` at the
//! repo root. Thread scaling is only asserted when the host actually has
//! the cores (`std::thread::available_parallelism`); the numbers are
//! recorded either way, alongside the host parallelism so the record is
//! interpretable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cmosaic::batch::BatchRunner;
use cmosaic::experiments::fig6_study;
use cmosaic::fuzzy::FuzzyController;
use cmosaic_bench::{banner, f, kv, section, strict_timing};
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_thermal::{ThermalModel, ThermalParams};

/// Counts every heap allocation so the zero-allocation contract is
/// measured, not assumed.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Reads one numeric field out of a flat JSON file written by an earlier
/// bench (no JSON dependency in this workspace).
fn read_json_number(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    banner("Perf: zero-allocation hot path + parallel batch sweep (fig6 family)");
    let grid = GridSpec::new(12, 12).expect("static dims");
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let powers = vec![vec![30.0 / 144.0; 144], vec![10.0 / 144.0; 144]];
    let ctrl = FuzzyController::table1();

    // ---- 1. Allocations per transient sub-step, warm path.
    let mut model = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("model");
    model.set_flow_rate(ctrl.level_flow(7)).expect("valid flow");
    let mut field = model.current_field();
    // Warm-up: factorise the operator, size every workspace buffer.
    for _ in 0..3 {
        model.step_into(&powers, 0.25, &mut field).expect("solves");
    }
    let steps = 400;

    let a0 = allocations();
    let t0 = Instant::now();
    for _ in 0..steps {
        let _ = std::hint::black_box(model.step(&powers, 0.25).expect("solves"));
    }
    let step_api_s = t0.elapsed().as_secs_f64() / steps as f64;
    let step_api_allocs = (allocations() - a0) as f64 / steps as f64;

    let a1 = allocations();
    let t1 = Instant::now();
    for _ in 0..steps {
        model.step_into(&powers, 0.25, &mut field).expect("solves");
        std::hint::black_box(field.raw());
    }
    let inplace_s = t1.elapsed().as_secs_f64() / steps as f64;
    let inplace_allocs = (allocations() - a1) as f64 / steps as f64;
    let warm_stats = model.solver_stats();

    section("transient sub-step (720-node fig6 operator, warm)");
    kv("allocating step API (µs)", f(step_api_s * 1e6, 1));
    kv("in-place step_into (µs)", f(inplace_s * 1e6, 1));
    kv("allocations/step, step API", f(step_api_allocs, 2));
    kv("allocations/step, step_into", f(inplace_allocs, 2));
    kv("workspace grows (whole run)", warm_stats.workspace_grows);
    kv("in-place solves", warm_stats.in_place_solves);

    // ---- 2. The PR 1 modulation loop, re-timed on the in-place path.
    let schedule: Vec<_> = [
        0usize, 1, 2, 3, 4, 4, 3, 2, 2, 3, 5, 6, 7, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 5, 4, 3,
        2, 1, 1,
    ]
    .iter()
    .map(|&level| ctrl.level_flow(level))
    .collect();
    let mut loop_model = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("model");
    loop_model.set_flow_rate(schedule[0]).expect("valid");
    loop_model.steady_state(&powers).expect("solves");
    // Warm every pump level so the loop measures the steady modulation
    // regime (cache hits + in-place solves), as PR 1's split path did.
    for q in &schedule {
        loop_model.set_flow_rate(*q).expect("valid");
        loop_model.steady_state(&powers).expect("solves");
    }
    let loop_iters = 6;
    let t2 = Instant::now();
    for _ in 0..loop_iters {
        for q in &schedule {
            loop_model.set_flow_rate(*q).expect("valid");
            std::hint::black_box(loop_model.steady_state(&powers).expect("solves"));
        }
    }
    let loop_s = t2.elapsed().as_secs_f64() / (loop_iters * schedule.len()) as f64;
    let baseline_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lu_refactor.json");
    let baseline_us = read_json_number(baseline_root, "loop_split_us_per_epoch");

    section("fig6 modulation loop (steady epochs, 8-level fuzzy schedule)");
    kv("in-place path per epoch (µs)", f(loop_s * 1e6, 1));
    match baseline_us {
        Some(b) => {
            kv("PR 1 split-path baseline (µs)", f(b, 1));
            kv(
                "improvement (baseline / in-place)",
                f(b / (loop_s * 1e6), 2),
            );
        }
        None => kv("PR 1 split-path baseline", "unavailable"),
    }

    // ---- 3. Batch sweep of the fig6 matrix across thread counts.
    let seconds = 40;
    let scenarios = fig6_study(seconds, 42, grid).build().expect("valid study");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let thread_counts = [1usize, 2, 4, 8];
    let mut walls = Vec::new();
    let mut reports = Vec::new();
    for &threads in &thread_counts {
        let t = Instant::now();
        let report = BatchRunner::new(threads).run_scenarios(&scenarios);
        assert!(report.all_ok(), "batch completes");
        walls.push(t.elapsed().as_secs_f64());
        reports.push(report);
    }
    let speedup8 = walls[0] / walls[3];

    section(
        format!(
            "batch sweep ({} fig6 scenarios x {seconds} s, host parallelism {host})",
            scenarios.len()
        )
        .as_str(),
    );
    for (w, &threads) in walls.iter().zip(&thread_counts) {
        let eff = walls[0] / (w * threads as f64);
        kv(
            &format!("{threads} thread(s): wall (ms) / efficiency"),
            format!("{:.0} / {:.2}", w * 1e3, eff),
        );
    }
    kv("speedup 8 vs 1 threads", f(speedup8, 2));
    kv("pattern groups", reports[0].pattern_groups);
    kv(
        "full factorisations (whole batch)",
        reports[0].total_full_factorizations(),
    );

    // Determinism across thread counts is part of the contract — verify
    // it on the full production-size matrix, not just the unit tests.
    for r in &reports[1..] {
        assert_eq!(
            reports[0].slots, r.slots,
            "batch outcomes must be bit-identical at any thread count"
        );
    }

    // ---- Machine-readable record.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scenario\": \"fig6_matrix_12x12_batch_sweep\",");
    let _ = writeln!(json, "  \"n_scenarios\": {},", scenarios.len());
    let _ = writeln!(json, "  \"seconds_per_scenario\": {seconds},");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"step_api_us\": {:.3},", step_api_s * 1e6);
    let _ = writeln!(json, "  \"step_into_us\": {:.3},", inplace_s * 1e6);
    let _ = writeln!(json, "  \"allocs_per_epoch_before\": {step_api_allocs:.3},");
    let _ = writeln!(json, "  \"allocs_per_epoch_after\": {inplace_allocs:.3},");
    let _ = writeln!(
        json,
        "  \"loop_inplace_us_per_epoch\": {:.3},",
        loop_s * 1e6
    );
    match baseline_us {
        Some(b) => {
            let _ = writeln!(json, "  \"loop_baseline_us_per_epoch\": {b:.3},");
        }
        None => {
            let _ = writeln!(json, "  \"loop_baseline_us_per_epoch\": null,");
        }
    }
    for (w, &threads) in walls.iter().zip(&thread_counts) {
        let _ = writeln!(json, "  \"wall_ms_{threads}_threads\": {:.3},", w * 1e3);
    }
    let _ = writeln!(json, "  \"speedup_8_vs_1\": {speedup8:.3},");
    let _ = writeln!(
        json,
        "  \"scaling_efficiency_8\": {:.3},",
        walls[0] / (walls[3] * 8.0)
    );
    let _ = writeln!(json, "  \"pattern_groups\": {},", reports[0].pattern_groups);
    let _ = writeln!(
        json,
        "  \"full_factorizations\": {}",
        reports[0].total_full_factorizations()
    );
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch_sweep.json");
    std::fs::write(out, &json).expect("write BENCH_batch_sweep.json");
    section("record");
    kv("written", out);

    // ---- Hard guarantees.
    assert_eq!(
        inplace_allocs, 0.0,
        "the warm step_into path must perform zero heap allocation"
    );
    assert_eq!(
        reports[0].total_full_factorizations(),
        reports[0].pattern_groups as u64,
        "shared analysis: one full factorisation per (stack, grid) pattern"
    );
    // Wall-clock assertions only on a quiet dedicated machine (see
    // `strict_timing`); the numbers are recorded regardless.
    if strict_timing() {
        if let Some(b) = baseline_us {
            assert!(
                loop_s * 1e6 < b,
                "in-place epoch ({:.1} µs) must beat the PR 1 split-path \
                 baseline ({b:.1} µs)",
                loop_s * 1e6
            );
        }
        if host >= 8 {
            assert!(
                speedup8 >= 3.0,
                "8-thread batch must be >=3x over 1 thread on an >=8-way \
                 host, got {speedup8:.2}x"
            );
        }
    }
}
