//! **Performance** — direct-LU vs ILU(0)-BiCGSTAB thermal backend across
//! grid resolution, on the 2-tier liquid-cooled stack.
//!
//! Three measurements:
//!
//! 1. *allocations*: heap allocations per warm transient sub-step under
//!    the iterative backend (a counting global allocator observes the
//!    truth — warm BiCGSTAB iterations must allocate exactly zero);
//! 2. *resolution sweep*: for each grid from 16×16 to 96×96, the
//!    operator *setup* cost (first steady solve: pivoting factorisation
//!    vs ILU(0) construction) and the *warm* per-solve cost (cached
//!    operator, new right-hand side) of each backend, plus the BiCGSTAB
//!    iteration counts and the agreement of the two temperature fields;
//! 3. *crossover*: where the iterative backend wins. Direct LU's fill
//!    makes its setup superlinear (ms at 16×16, seconds at 96×96) while
//!    ILU(0) stays O(nnz), so for a *fresh operating point* the iterative
//!    backend wins at every resolution and the margin grows with n; the
//!    direct triangular solve stays cheaper per warm repeat, so the
//!    record also reports the break-even number of solves per operating
//!    point at which direct's setup amortises — the figure a batch
//!    designer actually needs.
//!
//! Writes machine-readable results to `BENCH_iterative.json` at the repo
//! root. Wall-clock assertions honour `CMOSAIC_BENCH_RELAX`; the
//! deterministic asserts (zero allocations, zero fallbacks, field
//! agreement) always apply.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::time::Instant;

use cmosaic_bench::{banner, f, kv, section, strict_timing, Table};
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_thermal::{SolverBackend, ThermalModel, ThermalParams};

/// Counts every heap allocation so the zero-allocation contract is
/// measured, not assumed.
struct CountingAllocator;

static ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

struct BackendSample {
    setup_ms: f64,
    warm_solve_ms: f64,
    iterations_per_solve: f64,
    peak: f64,
}

/// Builds a model on `grid` with `solver`, runs one cold steady solve
/// (setup) and `warm` warm ones, and returns the timings.
fn sample(
    grid: GridSpec,
    solver: SolverBackend,
    powers: &[Vec<f64>],
    warm: usize,
) -> BackendSample {
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let params = ThermalParams {
        solver,
        ..Default::default()
    };
    let mut m = ThermalModel::new(&stack, grid, params).expect("model");
    m.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    let t0 = Instant::now();
    m.steady_state(powers).expect("cold solve");
    let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
    let before = m.solver_stats();
    let t1 = Instant::now();
    let mut peak = 0.0f64;
    for _ in 0..warm {
        let field = m.steady_state(powers).expect("warm solve");
        peak = field.max().0;
    }
    let warm_solve_ms = t1.elapsed().as_secs_f64() * 1e3 / warm as f64;
    let s = m.solver_stats();
    assert_eq!(
        s.iterative_fallbacks, 0,
        "the diagonally-dominant operator must never fall back: {s:?}"
    );
    let iterations_per_solve = if solver.is_iterative() {
        (s.iterative_iterations - before.iterative_iterations) as f64 / warm as f64
    } else {
        0.0
    };
    BackendSample {
        setup_ms,
        warm_solve_ms,
        iterations_per_solve,
        peak,
    }
}

fn main() {
    banner("Perf: direct-LU vs ILU(0)-BiCGSTAB backend across grid resolution");

    // ---- 1. Zero-allocation contract of the warm iterative hot path.
    let grid = GridSpec::new(48, 48).expect("static dims");
    let cells = grid.cell_count();
    let powers = vec![
        vec![30.0 / cells as f64; cells],
        vec![10.0 / cells as f64; cells],
    ];
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let params = ThermalParams {
        solver: SolverBackend::iterative(),
        ..Default::default()
    };
    let mut model = ThermalModel::new(&stack, grid, params).expect("model");
    model
        .set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    let mut field = model.current_field();
    for _ in 0..3 {
        model.step_into(&powers, 0.25, &mut field).expect("warm-up");
    }
    let steps = 50;
    let a0 = allocations();
    let t0 = Instant::now();
    for _ in 0..steps {
        model.step_into(&powers, 0.25, &mut field).expect("solves");
        std::hint::black_box(field.raw());
    }
    let substep_ms = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let allocs_per_step = (allocations() - a0) as f64 / steps as f64;
    let hot_stats = model.solver_stats();

    section("warm iterative transient sub-step (48x48 grid, 11521 nodes)");
    kv("allocations/sub-step", f(allocs_per_step, 2));
    kv("sub-step (ms)", f(substep_ms, 2));
    kv("BiCGSTAB solves", hot_stats.iterative_solves);
    kv("workspace grows (whole run)", hot_stats.workspace_grows);

    // ---- 2. Resolution sweep.
    let resolutions = [16usize, 24, 32, 48, 64, 96];
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "grid",
        "nodes",
        "LU setup",
        "LU solve",
        "ILU setup",
        "ILU solve",
        "iters",
        "break-even",
    ]);
    for &nres in &resolutions {
        let grid = GridSpec::new(nres, nres).expect("dims");
        let cells = grid.cell_count();
        let powers = vec![
            vec![30.0 / cells as f64; cells],
            vec![10.0 / cells as f64; cells],
        ];
        let warm = (40_000 / nres).clamp(6, 400);
        let direct = sample(grid, SolverBackend::DirectLu, &powers, warm);
        let iter = sample(grid, SolverBackend::iterative(), &powers, warm);
        assert!(
            (direct.peak - iter.peak).abs() < 1e-3,
            "backends disagree at {nres}x{nres}: {} vs {} K",
            direct.peak,
            iter.peak
        );
        // Solves per operating point at which direct's expensive setup
        // has amortised against its cheaper warm solve. Infinite (encoded
        // as -1) if the iterative warm solve is also cheaper.
        let break_even = if iter.warm_solve_ms > direct.warm_solve_ms {
            (direct.setup_ms - iter.setup_ms) / (iter.warm_solve_ms - direct.warm_solve_ms)
        } else {
            -1.0
        };
        table.row(&[
            format!("{nres}x{nres}"),
            format!("{}", cells * 5 + 1),
            format!("{:.1} ms", direct.setup_ms),
            format!("{:.2} ms", direct.warm_solve_ms),
            format!("{:.1} ms", iter.setup_ms),
            format!("{:.2} ms", iter.warm_solve_ms),
            format!("{:.0}", iter.iterations_per_solve),
            if break_even < 0.0 {
                "-".into()
            } else {
                format!("{break_even:.0}")
            },
        ]);
        rows.push((nres, direct, iter, break_even));
    }
    section("resolution sweep (2-tier liquid stack, 32.3 ml/min, steady operator)");
    table.print();

    // ---- 3. Crossover summary.
    // Fresh-operating-point cost: setup + one solve. The smallest grid at
    // which the iterative backend wins that race.
    let single_solve_crossover = rows
        .iter()
        .find(|(_, d, i, _)| i.setup_ms + i.warm_solve_ms < d.setup_ms + d.warm_solve_ms)
        .map(|(n, _, _, _)| *n);
    section("crossover");
    match single_solve_crossover {
        Some(n) => kv(
            "iterative wins a fresh operating point from",
            format!("{n}x{n}"),
        ),
        None => kv("iterative wins a fresh operating point from", "never"),
    }
    let (n_big, d_big, i_big, be_big) = rows.last().expect("non-empty sweep");
    kv(
        &format!("{n_big}x{n_big} setup advantage (LU/ILU)"),
        f(d_big.setup_ms / i_big.setup_ms, 1),
    );
    kv(
        &format!("{n_big}x{n_big} break-even solves/operating point"),
        f(*be_big, 0),
    );

    // ---- Machine-readable record.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scenario\": \"direct_vs_iterative_grid_sweep\",");
    let _ = writeln!(json, "  \"stack\": \"2-tier-liquid\",");
    let _ = writeln!(json, "  \"flow_ml_per_min\": 32.3,");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(
        json,
        "  \"allocs_per_warm_iterative_substep\": {allocs_per_step:.3},"
    );
    for (nres, d, i, be) in &rows {
        let _ = writeln!(json, "  \"direct_setup_ms_{nres}\": {:.3},", d.setup_ms);
        let _ = writeln!(
            json,
            "  \"direct_solve_ms_{nres}\": {:.4},",
            d.warm_solve_ms
        );
        let _ = writeln!(json, "  \"iterative_setup_ms_{nres}\": {:.3},", i.setup_ms);
        let _ = writeln!(
            json,
            "  \"iterative_solve_ms_{nres}\": {:.4},",
            i.warm_solve_ms
        );
        let _ = writeln!(
            json,
            "  \"iterative_iters_{nres}\": {:.1},",
            i.iterations_per_solve
        );
        let _ = writeln!(json, "  \"break_even_solves_{nres}\": {be:.1},");
    }
    match single_solve_crossover {
        Some(n) => {
            let _ = writeln!(json, "  \"single_solve_crossover_n\": {n},");
        }
        None => {
            let _ = writeln!(json, "  \"single_solve_crossover_n\": null,");
        }
    }
    let _ = writeln!(
        json,
        "  \"setup_advantage_at_{n_big}\": {:.1}",
        d_big.setup_ms / i_big.setup_ms
    );
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_iterative.json");
    std::fs::write(out, &json).expect("write BENCH_iterative.json");
    section("record");
    kv("written", out);

    // ---- Hard guarantees.
    assert_eq!(
        allocs_per_step, 0.0,
        "warm iterative sub-steps must perform zero heap allocation"
    );
    // Wall-clock assertions only on a quiet dedicated machine.
    if strict_timing() {
        assert_eq!(
            single_solve_crossover,
            Some(resolutions[0]),
            "ILU(0) setup must beat the pivoting factorisation at every \
             measured resolution"
        );
        assert!(
            d_big.setup_ms / i_big.setup_ms > 5.0,
            "the setup advantage must grow with resolution, got {:.1}x at {n_big}x{n_big}",
            d_big.setup_ms / i_big.setup_ms
        );
    }
}
