//! **Performance** — direct-LU vs ILU(0)-BiCGSTAB vs matrix-free
//! multigrid-BiCGSTAB thermal backend across grid resolution, on the
//! 2-tier liquid-cooled stack.
//!
//! Four measurements:
//!
//! 1. *allocations*: heap allocations per warm transient sub-step under
//!    each iterative backend (a counting global allocator observes the
//!    truth — warm BiCGSTAB iterations and V-cycles must allocate
//!    exactly zero);
//! 2. *resolution sweep*: for each grid from 16×16 to 192×192, the
//!    operator *setup* cost (first steady solve: pivoting factorisation
//!    vs ILU(0) construction vs matrix-free stencil + coarse hierarchy)
//!    and the *warm* per-solve cost (cached operator, new right-hand
//!    side) of each backend, plus the BiCGSTAB iteration counts and the
//!    agreement of the temperature fields. Direct LU is sampled only up
//!    to 96×96 — past that its superlinear fill makes the comparison a
//!    formality and the sweep slow;
//! 3. *per-kernel timings*: the matrix-free stencil matvec against the
//!    assembled-CSC matvec of the *same operator*, and one multigrid
//!    V-cycle against one ILU(0) apply, isolated from the Krylov loop;
//! 4. *crossover + scaling*: where each iterative backend wins, the
//!    break-even number of solves per operating point at which direct's
//!    setup amortises, the multigrid setup advantage over the
//!    assembled-ILU path, and the resolution-independence figure — the
//!    multigrid iteration-count ratio from 32×32 to 128×128, which the
//!    nightly-perf job enforces a ceiling on.
//!
//! Writes machine-readable results to `BENCH_iterative.json` at the repo
//! root. Wall-clock assertions honour `CMOSAIC_BENCH_RELAX`; the
//! deterministic asserts (zero allocations, zero fallbacks, field
//! agreement, iteration-count scaling) always apply.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::time::Instant;

use cmosaic_bench::{banner, f, kv, section, strict_timing, Table};
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_sparse::{GridShape, Ilu0, Multigrid, MultigridOptions, Preconditioner};
use cmosaic_thermal::{
    SolverBackend, StencilInterface, StencilLayer, StencilLayerKind, StencilOperator, ThermalModel,
    ThermalParams,
};

/// Counts every heap allocation so the zero-allocation contract is
/// measured, not assumed.
struct CountingAllocator;

static ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

struct BackendSample {
    setup_ms: f64,
    warm_solve_ms: f64,
    iterations_per_solve: f64,
    peak: f64,
}

/// Builds a model on `grid` with `solver`, runs one cold steady solve
/// (setup) and `warm` warm ones, and returns the timings.
fn sample(
    grid: GridSpec,
    solver: SolverBackend,
    powers: &[Vec<f64>],
    warm: usize,
) -> BackendSample {
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let params = ThermalParams {
        solver,
        ..Default::default()
    };
    let mut m = ThermalModel::new(&stack, grid, params).expect("model");
    m.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    let t0 = Instant::now();
    m.steady_state(powers).expect("cold solve");
    let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
    let before = m.solver_stats();
    let t1 = Instant::now();
    let mut peak = 0.0f64;
    for _ in 0..warm {
        let field = m.steady_state(powers).expect("warm solve");
        peak = field.max().0;
    }
    let warm_solve_ms = t1.elapsed().as_secs_f64() * 1e3 / warm as f64;
    let s = m.solver_stats();
    assert_eq!(
        s.iterative_fallbacks, 0,
        "the diagonally-dominant operator must never fall back: {s:?}"
    );
    let iterations_per_solve = if solver.is_iterative() {
        (s.iterative_iterations - before.iterative_iterations) as f64 / warm as f64
    } else {
        0.0
    };
    BackendSample {
        setup_ms,
        warm_solve_ms,
        iterations_per_solve,
        peak,
    }
}

/// Warms up a model under `solver` and measures allocations and
/// wall-clock per warm transient sub-step.
fn substep_allocs(solver: SolverBackend, grid: GridSpec, powers: &[Vec<f64>]) -> (f64, f64, u64) {
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let params = ThermalParams {
        solver,
        ..Default::default()
    };
    let mut model = ThermalModel::new(&stack, grid, params).expect("model");
    model
        .set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    let mut field = model.current_field();
    for _ in 0..3 {
        model.step_into(powers, 0.25, &mut field).expect("warm-up");
    }
    let steps = 50;
    let a0 = allocations();
    let t0 = Instant::now();
    for _ in 0..steps {
        model.step_into(powers, 0.25, &mut field).expect("solves");
        std::hint::black_box(field.raw());
    }
    let substep_ms = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let allocs_per_step = (allocations() - a0) as f64 / steps as f64;
    (
        allocs_per_step,
        substep_ms,
        model.solver_stats().workspace_grows,
    )
}

/// A representative 5-layer liquid-cooled stencil (two advecting
/// cavities with wall skip-paths between three solid layers) for the
/// per-kernel comparisons — same sparsity physics the thermal model
/// emits, constructed directly so the kernels are isolated from model
/// bookkeeping.
fn kernel_stencil(nres: usize) -> StencilOperator {
    let shape = GridShape {
        nx: nres,
        ny: nres,
        nz: 5,
        extra: 0,
    };
    let solid = StencilLayer {
        kind: StencilLayerKind::Solid,
        gx: 1.1,
        gy: 0.9,
        adv: 0.0,
        diag_extra: 0.4,
    };
    let cavity = StencilLayer {
        kind: StencilLayerKind::Cavity,
        gx: 0.0,
        gy: 0.0,
        adv: 2.3,
        diag_extra: 0.2,
    };
    StencilOperator::new(
        shape,
        vec![solid, cavity, solid, cavity, solid],
        vec![
            StencilInterface::symmetric(1.4),
            StencilInterface::symmetric(1.4),
            StencilInterface::symmetric(1.4),
            StencilInterface::symmetric(1.4),
        ],
        vec![0.0, 0.6, 0.0, 0.6, 0.0],
        None,
    )
}

struct KernelSample {
    stencil_matvec_ms: f64,
    csc_matvec_ms: f64,
    vcycle_ms: f64,
    ilu_apply_ms: f64,
}

/// Times the four inner kernels at one resolution: matrix-free stencil
/// matvec vs assembled-CSC matvec (bit-identical products), and one
/// multigrid V-cycle vs one ILU(0) apply (the per-Krylov-iteration
/// preconditioner cost).
fn kernel_sample(nres: usize) -> KernelSample {
    let stencil = kernel_stencil(nres);
    let csc = stencil.assemble();
    let n = stencil.shape().n();
    let x: Vec<f64> = (0..n).map(|i| 300.0 + (i % 17) as f64 * 0.25).collect();
    let mut y = vec![0.0; n];
    let reps = (4_000_000 / n).clamp(3, 400);

    let mut time_matvec = |mv: &dyn Fn(&[f64], &mut [f64])| {
        mv(&x, &mut y); // warm-up
        let t = Instant::now();
        for _ in 0..reps {
            mv(&x, &mut y);
            std::hint::black_box(&y);
        }
        t.elapsed().as_secs_f64() * 1e3 / reps as f64
    };
    let stencil_matvec_ms = time_matvec(&|x, y| stencil.matvec_into(x, y));
    let csc_matvec_ms = time_matvec(&|x, y| csc.matvec_into(x, y));

    // The products must be bit-identical — the LinearOperator contract
    // the whole matrix-free backend rests on.
    let mut ys = vec![0.0; n];
    stencil.matvec_into(&x, &mut ys);
    csc.matvec_into(&x, &mut y);
    assert_eq!(ys, y, "stencil and CSC matvec disagree at {nres}x{nres}");

    // Preconditioner applies: the model's coarsening loop (floor 64
    // in-plane cells) against ILU(0) on the assembled operator.
    let mut levels = Vec::new();
    let mut cur = stencil.clone();
    while levels.is_empty() || cur.shape().nx * cur.shape().ny >= 64 {
        let Some(next) = cur.coarsen() else { break };
        let shape = cur.shape();
        let diag = cur.diagonal().to_vec();
        levels.push((cur, shape, diag));
        cur = next;
    }
    let coarse = cur.assemble();
    let mut mg = Multigrid::new(levels, &coarse, None, MultigridOptions::default())
        .expect("coarsenable kernel stencil");
    let ilu = Ilu0::new(&csc).expect("ILU(0) on the assembled stencil");
    let r: Vec<f64> = (0..n).map(|i| 1.0 + (i % 13) as f64 * 0.1).collect();
    let mut z = vec![0.0; n];
    let mut time_precond = |apply: &mut dyn FnMut(&[f64], &mut Vec<f64>)| {
        apply(&r, &mut z); // warm-up
        let t = Instant::now();
        for _ in 0..reps {
            apply(&r, &mut z);
            std::hint::black_box(&z);
        }
        t.elapsed().as_secs_f64() * 1e3 / reps as f64
    };
    let vcycle_ms = time_precond(&mut |r, z| mg.apply_into(r, z).expect("v-cycle"));
    let ilu_apply_ms = time_precond(&mut |r, z| ilu.apply_into(r, z).expect("ilu apply"));

    KernelSample {
        stencil_matvec_ms,
        csc_matvec_ms,
        vcycle_ms,
        ilu_apply_ms,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    banner("Perf: direct-LU vs ILU(0) vs matrix-free multigrid across grid resolution");

    // ---- 1. Zero-allocation contract of both warm iterative hot paths.
    let grid = GridSpec::new(48, 48).expect("static dims");
    let cells = grid.cell_count();
    let powers = vec![
        vec![30.0 / cells as f64; cells],
        vec![10.0 / cells as f64; cells],
    ];
    let (ilu_allocs, ilu_substep_ms, ilu_grows) =
        substep_allocs(SolverBackend::iterative(), grid, &powers);
    let (mg_allocs, mg_substep_ms, mg_grows) =
        substep_allocs(SolverBackend::multigrid(), grid, &powers);

    section("warm iterative transient sub-step (48x48 grid, 11521 nodes)");
    kv("ILU(0) allocations/sub-step", f(ilu_allocs, 2));
    kv("ILU(0) sub-step (ms)", f(ilu_substep_ms, 2));
    kv("multigrid allocations/sub-step", f(mg_allocs, 2));
    kv("multigrid sub-step (ms)", f(mg_substep_ms, 2));
    kv(
        "workspace grows (whole run, ILU/mg)",
        format!("{ilu_grows}/{mg_grows}"),
    );

    // ---- 2. Resolution sweep. Direct LU only up to 96x96 (its fill
    // makes larger setups take seconds and proves nothing new).
    let resolutions = [16usize, 24, 32, 48, 64, 96, 128, 192];
    let direct_cap = 96usize;
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "grid",
        "nodes",
        "LU setup",
        "LU solve",
        "ILU setup",
        "ILU solve",
        "iters",
        "MG setup",
        "MG solve",
        "MG iters",
        "break-even",
    ]);
    for &nres in &resolutions {
        let grid = GridSpec::new(nres, nres).expect("dims");
        let cells = grid.cell_count();
        let powers = vec![
            vec![30.0 / cells as f64; cells],
            vec![10.0 / cells as f64; cells],
        ];
        let warm = (20_000 / nres).clamp(4, 400);
        let direct =
            (nres <= direct_cap).then(|| sample(grid, SolverBackend::DirectLu, &powers, warm));
        let iter = sample(grid, SolverBackend::iterative(), &powers, warm);
        let mg = sample(grid, SolverBackend::multigrid(), &powers, warm);
        // All backends solve the same physics: agree to solver tolerance
        // (against direct where sampled, else against each other).
        let reference = direct.as_ref().map_or(iter.peak, |d| d.peak);
        for (name, peak) in [("iterative", iter.peak), ("multigrid", mg.peak)] {
            assert!(
                (reference - peak).abs() < 1e-3,
                "{name} disagrees at {nres}x{nres}: {reference} vs {peak} K"
            );
        }
        // Solves per operating point at which direct's expensive setup
        // has amortised against its cheaper warm solve. Infinite (encoded
        // as -1) if the iterative warm solve is also cheaper.
        let break_even = direct.as_ref().map(|d| {
            if iter.warm_solve_ms > d.warm_solve_ms {
                (d.setup_ms - iter.setup_ms) / (iter.warm_solve_ms - d.warm_solve_ms)
            } else {
                -1.0
            }
        });
        table.row(&[
            format!("{nres}x{nres}"),
            format!("{}", cells * 5 + 1),
            direct
                .as_ref()
                .map_or("-".into(), |d| format!("{:.1} ms", d.setup_ms)),
            direct
                .as_ref()
                .map_or("-".into(), |d| format!("{:.2} ms", d.warm_solve_ms)),
            format!("{:.1} ms", iter.setup_ms),
            format!("{:.2} ms", iter.warm_solve_ms),
            format!("{:.0}", iter.iterations_per_solve),
            format!("{:.2} ms", mg.setup_ms),
            format!("{:.2} ms", mg.warm_solve_ms),
            format!("{:.0}", mg.iterations_per_solve),
            match break_even {
                Some(be) if be >= 0.0 => format!("{be:.0}"),
                _ => "-".into(),
            },
        ]);
        rows.push((nres, direct, iter, mg, break_even));
    }
    section("resolution sweep (2-tier liquid stack, 32.3 ml/min, steady operator)");
    table.print();

    // ---- 3. Per-kernel timings, isolated from the Krylov loop.
    let kernel_resolutions = [64usize, 128, 192];
    let mut kernel_rows = Vec::new();
    let mut ktable = Table::new(&[
        "grid",
        "stencil matvec",
        "CSC matvec",
        "V-cycle",
        "ILU apply",
    ]);
    for &nres in &kernel_resolutions {
        let k = kernel_sample(nres);
        ktable.row(&[
            format!("{nres}x{nres}"),
            format!("{:.3} ms", k.stencil_matvec_ms),
            format!("{:.3} ms", k.csc_matvec_ms),
            format!("{:.3} ms", k.vcycle_ms),
            format!("{:.3} ms", k.ilu_apply_ms),
        ]);
        kernel_rows.push((nres, k));
    }
    section("per-kernel timings (5-layer synthetic stencil, bit-identical products)");
    ktable.print();

    // ---- 4. Crossover and scaling summary.
    let single_solve_crossover = rows
        .iter()
        .filter_map(|(n, d, i, _, _)| d.as_ref().map(|d| (n, d, i)))
        .find(|(_, d, i)| i.setup_ms + i.warm_solve_ms < d.setup_ms + d.warm_solve_ms)
        .map(|(n, _, _)| *n);
    section("crossover and scaling");
    match single_solve_crossover {
        Some(n) => kv(
            "iterative wins a fresh operating point from",
            format!("{n}x{n}"),
        ),
        None => kv("iterative wins a fresh operating point from", "never"),
    }
    let iters_at = |target: usize, mg_backend: bool| {
        rows.iter()
            .find(|(n, ..)| *n == target)
            .map(|(_, _, i, m, _)| {
                if mg_backend {
                    m.iterations_per_solve
                } else {
                    i.iterations_per_solve
                }
            })
            .expect("resolution sampled")
    };
    // The resolution-independence figure: multigrid iterations must stay
    // essentially flat from 32^2 to 128^2 while ILU(0)'s local error
    // reduction degrades.
    let mg_ratio = iters_at(128, true) / iters_at(32, true);
    let ilu_ratio = iters_at(128, false) / iters_at(32, false);
    kv("MG iteration ratio 32->128", f(mg_ratio, 2));
    kv("ILU iteration ratio 32->128", f(ilu_ratio, 2));
    let (_, d_big, i_big, _, be_big) = rows
        .iter()
        .rev()
        .find(|(_, d, ..)| d.is_some())
        .expect("a direct-sampled row");
    let d_big = d_big.as_ref().expect("filtered on Some");
    let n_big = direct_cap;
    kv(
        &format!("{n_big}x{n_big} setup advantage (LU/ILU)"),
        f(d_big.setup_ms / i_big.setup_ms, 1),
    );
    let mg_96 = rows
        .iter()
        .find(|(n, ..)| *n == direct_cap)
        .map(|(_, _, i, m, _)| i.setup_ms / m.setup_ms)
        .expect("96 sampled");
    kv(
        &format!("{n_big}x{n_big} setup advantage (ILU/MG)"),
        f(mg_96, 1),
    );
    kv(
        &format!("{n_big}x{n_big} break-even solves/operating point"),
        f(be_big.unwrap_or(-1.0), 0),
    );

    // ---- Machine-readable record.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scenario\": \"direct_vs_iterative_grid_sweep\",");
    let _ = writeln!(json, "  \"stack\": \"2-tier-liquid\",");
    let _ = writeln!(json, "  \"flow_ml_per_min\": 32.3,");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(
        json,
        "  \"allocs_per_warm_iterative_substep\": {ilu_allocs:.3},"
    );
    let _ = writeln!(json, "  \"allocs_per_warm_mg_substep\": {mg_allocs:.3},");
    for (nres, d, i, m, be) in &rows {
        if let Some(d) = d {
            let _ = writeln!(json, "  \"direct_setup_ms_{nres}\": {:.3},", d.setup_ms);
            let _ = writeln!(
                json,
                "  \"direct_solve_ms_{nres}\": {:.4},",
                d.warm_solve_ms
            );
        }
        let _ = writeln!(json, "  \"iterative_setup_ms_{nres}\": {:.3},", i.setup_ms);
        let _ = writeln!(
            json,
            "  \"iterative_solve_ms_{nres}\": {:.4},",
            i.warm_solve_ms
        );
        let _ = writeln!(
            json,
            "  \"iterative_iters_{nres}\": {:.1},",
            i.iterations_per_solve
        );
        let _ = writeln!(json, "  \"mg_setup_ms_{nres}\": {:.3},", m.setup_ms);
        let _ = writeln!(json, "  \"mg_solve_ms_{nres}\": {:.4},", m.warm_solve_ms);
        let _ = writeln!(
            json,
            "  \"mg_iters_{nres}\": {:.1},",
            m.iterations_per_solve
        );
        if let Some(be) = be {
            let _ = writeln!(json, "  \"break_even_solves_{nres}\": {be:.1},");
        }
    }
    for (nres, k) in &kernel_rows {
        let _ = writeln!(
            json,
            "  \"stencil_matvec_ms_{nres}\": {:.4},",
            k.stencil_matvec_ms
        );
        let _ = writeln!(json, "  \"csc_matvec_ms_{nres}\": {:.4},", k.csc_matvec_ms);
        let _ = writeln!(json, "  \"vcycle_apply_ms_{nres}\": {:.4},", k.vcycle_ms);
        let _ = writeln!(json, "  \"ilu_apply_ms_{nres}\": {:.4},", k.ilu_apply_ms);
    }
    match single_solve_crossover {
        Some(n) => {
            let _ = writeln!(json, "  \"single_solve_crossover_n\": {n},");
        }
        None => {
            let _ = writeln!(json, "  \"single_solve_crossover_n\": null,");
        }
    }
    let _ = writeln!(json, "  \"mg_iteration_ratio_32_to_128\": {mg_ratio:.3},");
    let _ = writeln!(json, "  \"ilu_iteration_ratio_32_to_128\": {ilu_ratio:.3},");
    let _ = writeln!(json, "  \"mg_setup_advantage_at_96\": {mg_96:.1},");
    let _ = writeln!(
        json,
        "  \"setup_advantage_at_{n_big}\": {:.1}",
        d_big.setup_ms / i_big.setup_ms
    );
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_iterative.json");
    std::fs::write(out, &json).expect("write BENCH_iterative.json");
    section("record");
    kv("written", out);

    // ---- Hard guarantees.
    assert_eq!(
        ilu_allocs, 0.0,
        "warm ILU(0) sub-steps must perform zero heap allocation"
    );
    assert_eq!(
        mg_allocs, 0.0,
        "warm multigrid sub-steps must perform zero heap allocation"
    );
    // Iteration counts are deterministic, so the scaling contracts hold
    // regardless of host noise: multigrid stays essentially flat while
    // ILU(0) degrades with refinement.
    assert!(
        mg_ratio <= 1.5,
        "multigrid iterations must stay resolution-independent, got {mg_ratio:.2}x from 32^2 to 128^2"
    );
    assert!(
        ilu_ratio >= 2.0,
        "ILU(0) is expected to degrade with refinement, got {ilu_ratio:.2}x from 32^2 to 128^2"
    );
    // Wall-clock assertions only on a quiet dedicated machine.
    if strict_timing() {
        assert_eq!(
            single_solve_crossover,
            Some(resolutions[0]),
            "ILU(0) setup must beat the pivoting factorisation at every \
             measured resolution"
        );
        assert!(
            d_big.setup_ms / i_big.setup_ms > 5.0,
            "the setup advantage must grow with resolution, got {:.1}x at {n_big}x{n_big}",
            d_big.setup_ms / i_big.setup_ms
        );
        assert!(
            mg_96 > 5.0,
            "the matrix-free multigrid setup must be >=5x cheaper than the \
             assembled-ILU path at {n_big}x{n_big}, got {mg_96:.1}x"
        );
    }
}
