//! **Performance** — thermal-aware placement optimization on the
//! reference 2-tier Niagara space: pump operating point x block
//! placement x inter-tier channel geometry under the database workload.
//!
//! Two measurements:
//!
//! 1. *evaluations-to-optimum*: the exhaustive grid vs seeded simulated
//!    annealing — distinct designs simulated before the known optimum is
//!    in hand. The nightly gate pins the annealer at <= 40% of the
//!    grid's evaluations;
//! 2. *memoization*: the share of the annealer's evaluation requests
//!    served from the evaluator's cache instead of re-simulated.
//!
//! Writes machine-readable results to `BENCH_placement.json` at the repo
//! root. Wall-clock assertions only fire on a quiet dedicated machine
//! (see `strict_timing`); deterministic assertions (same optimum, the
//! 40% evaluation budget, bit-identity across thread counts) always
//! apply.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cmosaic::batch::BatchRunner;
use cmosaic::optimize::{
    Constraints, DesignAxis, DesignSpace, GridSearch, OptimizeReport, Optimizer,
    SimulatedAnnealing, StackTransform,
};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::ScenarioSpec;
use cmosaic_bench::{banner, f, kv, section, strict_timing};
use cmosaic_floorplan::transform::{set_gap_cavity, spread_hotspots_in_tier, swap_in_tier};
use cmosaic_floorplan::{CavitySpec, ElementKind, GridSpec};
use cmosaic_materials::units::{Celsius, VolumetricFlow};
use cmosaic_power::trace::WorkloadKind;

const SECONDS: usize = 12;
const SA_SEED: u64 = 11;
const SA_STEPS: usize = 12;

/// The reference 2-tier Niagara placement space shared with
/// `examples/optimize_placement.rs` and `tests/integration_placement.rs`.
fn placement_space() -> DesignSpace {
    let ml = VolumetricFlow::from_ml_per_min;
    let base = ScenarioSpec::new()
        .policy(PolicyKind::LcLb)
        .workload(WorkloadKind::Database)
        .grid(GridSpec::new(6, 6).expect("static dims"))
        .thermal_dt(0.5)
        .tiers(2)
        .seconds(SECONDS)
        .seed(7);
    let identity: StackTransform = Arc::new(|s| Ok(s.clone()));
    let swap: StackTransform = Arc::new(|s| swap_in_tier(s, 0, "core0", "core7"));
    let spread: StackTransform = Arc::new(|s| {
        spread_hotspots_in_tier(
            s,
            0,
            ElementKind::Core,
            &[8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
        )
    });
    let table1: StackTransform = Arc::new(|s| set_gap_cavity(s, 0, Some(CavitySpec::table1())));
    let wide: StackTransform = Arc::new(|s| {
        let spec = CavitySpec::new(
            0.1e-3,
            0.15e-3,
            0.1e-3,
            cmosaic_materials::solids::SolidMaterial::silicon(),
        )?;
        set_gap_cavity(s, 0, Some(spec))
    });
    DesignSpace::new(base)
        .with_axis(DesignAxis::flow_rates([
            ml(14.0),
            ml(20.0),
            ml(26.0),
            ml(32.3),
        ]))
        .with_axis(DesignAxis::stack_transforms(
            "placement",
            [
                ("as-designed", identity),
                ("swap(core0,core7)", swap),
                ("spread(core)", spread),
            ],
        ))
        .with_axis(DesignAxis::stack_transforms(
            "channel",
            [("table1 channels", table1), ("wide channels", wide)],
        ))
}

fn timed(
    runner: &BatchRunner,
    strategy: &mut dyn cmosaic::optimize::SearchStrategy,
) -> (OptimizeReport, f64) {
    let opt = Optimizer::new(
        placement_space(),
        Constraints::peak_below(Celsius(85.0)),
        runner,
    );
    let t = Instant::now();
    let report = opt.run(strategy).expect("optimization completes");
    (report, t.elapsed().as_secs_f64())
}

fn main() {
    banner("Perf: placement optimization (exhaustive grid vs seeded annealing)");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runner = BatchRunner::new(host);
    let n_designs = placement_space().len();

    // ---- 1. Ground truth: the exhaustive grid.
    let (grid, wall_grid) = timed(&runner, &mut GridSearch);
    let best = grid.best.as_ref().expect("feasible design exists");
    section(&format!(
        "exhaustive grid ({n_designs} designs x {SECONDS} s, {host} workers)"
    ));
    kv("grid evaluations", grid.n_evaluations());
    kv(
        "grid evals to optimum",
        grid.evals_to_best.expect("grid finds it"),
    );
    kv("grid wall (ms)", f(wall_grid * 1e3, 0));
    kv("optimum", &best.label);

    // ---- 2. Seeded annealing over the same memoized evaluator.
    let (sa, wall_sa) = timed(
        &runner,
        &mut SimulatedAnnealing::seeded(SA_SEED).steps(SA_STEPS),
    );
    let sa_best = sa.best.as_ref().expect("annealer lands feasible");
    let evals_ratio = sa.n_evaluations() as f64 / grid.n_evaluations() as f64;
    section(&format!(
        "simulated annealing (seed {SA_SEED}, {SA_STEPS} steps)"
    ));
    kv("anneal evaluations", sa.n_evaluations());
    kv(
        "anneal evals to optimum",
        sa.evals_to_best.expect("annealer finds it"),
    );
    kv("evaluation requests", sa.eval_requests);
    kv("memoized hits", sa.memo_hits);
    kv(
        "memo hit rate",
        format!("{:.1} %", sa.memo_hit_rate() * 100.0),
    );
    kv("evals vs grid", format!("{:.1} %", evals_ratio * 100.0));
    kv("anneal wall (ms)", f(wall_sa * 1e3, 0));

    // ---- 3. Thread-count bit identity on the annealing trajectory.
    let (serial, wall_1) = timed(
        &BatchRunner::new(1),
        &mut SimulatedAnnealing::seeded(SA_SEED).steps(SA_STEPS),
    );
    let (eight, wall_8) = timed(
        &BatchRunner::new(8),
        &mut SimulatedAnnealing::seeded(SA_SEED).steps(SA_STEPS),
    );
    section("thread-count bit identity (annealing)");
    kv("1 thread wall (ms)", f(wall_1 * 1e3, 0));
    kv("8 threads wall (ms)", f(wall_8 * 1e3, 0));

    // ---- Machine-readable record.
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"scenario\": \"placement_2tier_niagara_db_85C_6x6\","
    );
    let _ = writeln!(json, "  \"n_designs\": {n_designs},");
    let _ = writeln!(json, "  \"seconds_per_design\": {SECONDS},");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"sa_seed\": {SA_SEED},");
    let _ = writeln!(json, "  \"sa_steps\": {SA_STEPS},");
    let _ = writeln!(json, "  \"grid_evaluations\": {},", grid.n_evaluations());
    let _ = writeln!(
        json,
        "  \"grid_evals_to_best\": {},",
        grid.evals_to_best.expect("grid finds it")
    );
    let _ = writeln!(json, "  \"anneal_evaluations\": {},", sa.n_evaluations());
    let _ = writeln!(
        json,
        "  \"anneal_evals_to_best\": {},",
        sa.evals_to_best.expect("annealer finds it")
    );
    let _ = writeln!(json, "  \"anneal_eval_requests\": {},", sa.eval_requests);
    let _ = writeln!(json, "  \"anneal_memo_hits\": {},", sa.memo_hits);
    let _ = writeln!(
        json,
        "  \"anneal_memo_hit_rate\": {:.3},",
        sa.memo_hit_rate()
    );
    let _ = writeln!(json, "  \"anneal_evals_ratio\": {evals_ratio:.3},");
    let _ = writeln!(json, "  \"optimum\": \"{}\",", best.label);
    let _ = writeln!(
        json,
        "  \"optimum_matched\": {},",
        sa_best.design == best.design
    );
    let _ = writeln!(json, "  \"wall_ms_grid\": {:.3},", wall_grid * 1e3);
    let _ = writeln!(json, "  \"wall_ms_anneal\": {:.3},", wall_sa * 1e3);
    let _ = writeln!(json, "  \"wall_ms_1_threads\": {:.3},", wall_1 * 1e3);
    let _ = writeln!(json, "  \"wall_ms_8_threads\": {:.3}", wall_8 * 1e3);
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_placement.json");
    std::fs::write(out, &json).expect("write BENCH_placement.json");
    section("record");
    kv("written", out);

    // ---- Hard guarantees.
    assert_eq!(
        sa_best.design, best.design,
        "annealing must land on the grid optimum ({} vs {})",
        sa_best.label, best.label
    );
    assert!(
        sa.n_evaluations() as f64 <= 0.40 * grid.n_evaluations() as f64,
        "annealing must reach the optimum within 40% of the grid's evaluations \
         ({} of {})",
        sa.n_evaluations(),
        grid.n_evaluations()
    );
    assert!(sa.memo_hits > 0, "revisits must be served from the cache");
    assert_eq!(
        serial, eight,
        "the annealing report must be bit-identical at 1 vs 8 threads"
    );
    assert_eq!(serial, sa, "same seed, same trajectory at any worker count");
    if strict_timing() {
        assert!(
            wall_sa < wall_grid,
            "annealing ({:.0} ms) must beat the exhaustive grid ({:.0} ms)",
            wall_sa * 1e3,
            wall_grid * 1e3
        );
    }
}
