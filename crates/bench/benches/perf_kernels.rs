//! Criterion micro-benchmarks of the computational kernels underneath the
//! reproduction: sparse LU factor/solve on the thermal operator, one
//! transient thermal step, one steady solve, and a fuzzy-controller
//! decision.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cmosaic::fuzzy::FuzzyController;
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::{Kelvin, VolumetricFlow};
use cmosaic_sparse::{lu, TripletMatrix};
use cmosaic_thermal::{ThermalModel, ThermalParams};

/// A 3D 7-point grid operator of the size the 2-tier thermal model uses.
fn thermal_sized_matrix() -> cmosaic_sparse::CscMatrix {
    let (nx, ny, nz) = (12, 12, 5);
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut t = TripletMatrix::new(n, n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                t.push(i, i, 0.05); // leak to ambient keeps it nonsingular
                if x + 1 < nx {
                    t.stamp_conductance(i, idx(x + 1, y, z), 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(i, idx(x, y + 1, z), 0.7);
                }
                if z + 1 < nz {
                    t.stamp_conductance(i, idx(x, y, z + 1), 3.0);
                }
                if x > 0 {
                    // Nonsymmetric upwind coupling, as the cavity rows add.
                    t.push(i, idx(x - 1, y, z), -0.2);
                    t.push(i, i, 0.2);
                }
            }
        }
    }
    t.to_csc()
}

fn bench_sparse(c: &mut Criterion) {
    let a = thermal_sized_matrix();
    let b: Vec<f64> = (0..a.nrows())
        .map(|i| (i % 17) as f64 * 0.3 + 1.0)
        .collect();
    c.bench_function("sparse_lu_factor_720", |bench| {
        bench.iter(|| lu::factor(black_box(&a)).expect("nonsingular"));
    });
    let factors = lu::factor(&a).expect("nonsingular");
    c.bench_function("sparse_lu_solve_720", |bench| {
        bench.iter(|| factors.solve(black_box(&b)).expect("sized"));
    });
}

fn bench_thermal(c: &mut Criterion) {
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let grid = GridSpec::new(12, 12).expect("static dims");
    let mut model =
        ThermalModel::new(&stack, grid, ThermalParams::default()).expect("model builds");
    model
        .set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    let powers = vec![vec![30.0 / 144.0; 144], vec![10.0 / 144.0; 144]];
    // Warm the factorisation caches so the benches measure the per-step
    // cost the co-simulation actually pays.
    model.steady_state(&powers).expect("solves");
    model.step(&powers, 0.25).expect("steps");

    c.bench_function("thermal_transient_step_2tier_12x12", |bench| {
        bench.iter(|| model.step(black_box(&powers), 0.25).expect("steps"));
    });
    c.bench_function("thermal_steady_state_2tier_12x12", |bench| {
        bench.iter(|| model.steady_state(black_box(&powers)).expect("solves"));
    });
}

fn bench_fuzzy(c: &mut Criterion) {
    let ctrl = FuzzyController::table1();
    c.bench_function("fuzzy_flow_decision", |bench| {
        bench.iter(|| ctrl.flow_rate(black_box(Kelvin::from_celsius(72.5)), black_box(0.63)));
    });
}

criterion_group!(benches, bench_sparse, bench_thermal, bench_fuzzy);
criterion_main!(benches);
