//! The coalescing scheduler: merges concurrent requests into shared
//! batches and owns the cross-request caches.
//!
//! A single worker thread drains a submission queue. When a request
//! arrives it opens a *coalescing window*; every request arriving within
//! the window joins the same batch. The batch's scenarios are
//! deduplicated by spec [`fingerprint`](cmosaic::ScenarioSpec::fingerprint)
//! (two requests asking for the same scenario share one simulation),
//! resolved against the result LRU (a repeated spec costs nothing), and
//! the remainder executes as **one** [`BatchRunner`] batch — so one symbolic
//! factorisation serves every in-flight request of the same operator
//! pattern, and patterns already in the analysis LRU cost zero full
//! factorisations (the batch engine adopts the cached analysis via
//! [`run_scenarios_seeded_observed`](cmosaic::BatchRunner::run_scenarios_seeded_observed)).
//!
//! None of this machinery is observable in the run responses themselves:
//! analysis donation is bit-neutral in the engine, so a scenario's
//! outcome — and the serialized slot payload built from it — is a pure
//! bitwise function of its spec, whatever the batching, window timing or
//! cache warmth did. Per-epoch streams are captured alongside the result
//! (including the epochs of retried attempts, which the deterministic
//! retry ladder replays identically), so a warm cache hit streams the
//! same per-slot event sequence a cold run streamed live.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cmosaic::batch::{RecoveryRecord, ScenarioError, SlotError};
use cmosaic::observe::{EpochCtx, Observer};
use cmosaic::{BatchRunner, Scenario, ScenarioSpec};
use cmosaic_thermal::{SharedAnalysis, SolverStats};

use crate::cache::{CacheStats, Lru};
use crate::json::Json;
use crate::protocol::slot_json;

/// Tuning knobs of a [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads of the shared [`BatchRunner`].
    pub threads: usize,
    /// Coalescing window: how long the scheduler waits, after the first
    /// request of a batch, for more requests to join it. Zero disables
    /// coalescing (every request runs alone).
    pub window: Duration,
    /// Capacity of the pattern → [`SharedAnalysis`] LRU (0 disables).
    pub analysis_cache: usize,
    /// Capacity of the spec-fingerprint → result LRU (0 disables).
    pub result_cache: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            threads: 4,
            window: Duration::from_millis(10),
            analysis_cache: 32,
            result_cache: 256,
        }
    }
}

/// One captured control interval of a scenario — the payload of a
/// streamed `epoch` event, kept spec-pure so live streams and cached
/// replays are indistinguishable.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnap {
    /// Control-interval index.
    pub epoch: usize,
    /// Simulated time at the end of the interval, seconds.
    pub time: f64,
    /// Hottest junction temperature over the interval, kelvin.
    pub peak_k: f64,
    /// Chip power over the interval, watts.
    pub chip_w: f64,
    /// Pump power over the interval, watts.
    pub pump_w: f64,
    /// Per-cavity coolant flow, m³/s, if any.
    pub flow_m3s: Option<f64>,
}

/// What a submission receives on its reply channel: any number of
/// [`Reply::Epoch`] events (streaming submissions only), then exactly one
/// [`Reply::Done`].
#[derive(Debug, Clone)]
pub enum Reply {
    /// One control interval of one scenario, keyed by spec fingerprint
    /// (the submitter maps fingerprints back to its own slot indices).
    Epoch {
        /// The scenario's spec fingerprint.
        fingerprint: u64,
        /// The captured interval.
        snap: EpochSnap,
    },
    /// Per-slot results in the submission's spec order; terminal.
    Done {
        /// One serialized slot payload per requested spec.
        slots: Vec<Json>,
    },
}

/// Point-in-time counters for the `stats` endpoint.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Cache and coalescing counters.
    pub cache: CacheStats,
    /// Solver counters summed over every executed scenario.
    pub solver: SolverStats,
    /// Shape of the most recent coalesced batch.
    pub last_batch: BatchSummary,
}

/// Shape of one coalesced batch.
#[derive(Debug, Clone, Default)]
pub struct BatchSummary {
    /// Requests merged into the batch.
    pub requests: u64,
    /// Unique scenarios after fingerprint dedup (including cache hits).
    pub unique_scenarios: u64,
    /// Distinct operator patterns among the scenarios actually executed.
    pub pattern_groups: u64,
    /// Full factorisations the executed scenarios performed — with a
    /// cold analysis cache this equals `pattern_groups`, with a warm one
    /// it drops to zero.
    pub full_factorizations: u64,
}

struct Submission {
    specs: Vec<ScenarioSpec>,
    stream: bool,
    reply: Sender<Reply>,
}

enum Msg {
    Submit(Submission),
    Shutdown,
}

/// Everything memoized about one finished (or failed) scenario: the
/// serialized slot payload and the captured epoch stream.
#[derive(Clone)]
struct CachedResult {
    slot: Json,
    epochs: Arc<Vec<EpochSnap>>,
}

/// The coalescing scheduler. Create with [`Scheduler::start`], feed with
/// [`Scheduler::submit`], stop with [`Scheduler::shutdown`] (drains
/// everything already accepted).
pub struct Scheduler {
    tx: Sender<Msg>,
    worker: Mutex<Option<JoinHandle<()>>>,
    accepting: Arc<AtomicBool>,
    stats: Arc<Mutex<StatsSnapshot>>,
}

impl Scheduler {
    /// Spawns the worker thread and returns the handle.
    pub fn start(config: SchedulerConfig) -> Scheduler {
        let (tx, rx) = mpsc::channel();
        let accepting = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(Mutex::new(StatsSnapshot::default()));
        let stats_w = Arc::clone(&stats);
        let worker = std::thread::spawn(move || {
            Worker {
                runner: BatchRunner::new(config.threads),
                window: config.window,
                analyses: Mutex::new(Lru::new(config.analysis_cache)),
                results: Lru::new(config.result_cache),
                stats: stats_w,
            }
            .run(rx);
        });
        Scheduler {
            tx,
            worker: Mutex::new(Some(worker)),
            accepting,
            stats,
        }
    }

    /// Submits one request's scenarios. Returns the reply channel, or
    /// `None` when the scheduler is shutting down (the caller should
    /// answer with a refusal). `stream` opts into per-epoch events.
    pub fn submit(&self, specs: Vec<ScenarioSpec>, stream: bool) -> Option<Receiver<Reply>> {
        if !self.accepting.load(Ordering::SeqCst) {
            return None;
        }
        let (reply, rx) = mpsc::channel();
        let sub = Submission {
            specs,
            stream,
            reply,
        };
        self.tx.send(Msg::Submit(sub)).ok()?;
        Some(rx)
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        lock_unpoisoned(&self.stats).clone()
    }

    /// Graceful shutdown: stop accepting, let the worker drain every
    /// already-accepted submission, and join it. Idempotent.
    pub fn shutdown(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(worker) = lock_unpoisoned(&self.worker).take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-scenario observer: forwards every epoch to the live subscribers
/// and appends it to the scenario's capture log (shared across retry
/// attempts, so the log holds exactly what was streamed).
struct StreamObserver {
    fingerprint: u64,
    log: Arc<Mutex<Vec<EpochSnap>>>,
    subs: Arc<Vec<Sender<Reply>>>,
}

impl Observer for StreamObserver {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        let snap = EpochSnap {
            epoch: ctx.epoch,
            time: ctx.time,
            peak_k: ctx.peak.0,
            chip_w: ctx.chip_power,
            pump_w: ctx.pump_power,
            flow_m3s: ctx.flow.map(|q| q.0),
        };
        for sub in self.subs.iter() {
            let _ = sub.send(Reply::Epoch {
                fingerprint: self.fingerprint,
                snap: snap.clone(),
            });
        }
        lock_unpoisoned(&self.log).push(snap);
    }
}

struct Worker {
    runner: BatchRunner,
    window: Duration,
    analyses: Mutex<Lru<SharedAnalysis>>,
    results: Lru<CachedResult>,
    stats: Arc<Mutex<StatsSnapshot>>,
}

impl Worker {
    fn run(mut self, rx: Receiver<Msg>) {
        loop {
            // Block for the batch opener.
            let first = match rx.recv() {
                Ok(Msg::Submit(sub)) => sub,
                Ok(Msg::Shutdown) | Err(_) => break,
            };
            let mut batch = vec![first];
            let mut shutting_down = false;
            // Coalesce: accept joiners until the window closes.
            let deadline = Instant::now() + self.window;
            while !shutting_down {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(Msg::Submit(sub)) => batch.push(sub),
                    Ok(Msg::Shutdown) => shutting_down = true,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        shutting_down = true;
                    }
                }
            }
            self.execute(batch);
            if shutting_down {
                break;
            }
        }
        // Drain: everything already accepted still runs (one final
        // coalesced batch), then the worker exits.
        let leftovers: Vec<Submission> = rx
            .try_iter()
            .filter_map(|m| match m {
                Msg::Submit(sub) => Some(sub),
                Msg::Shutdown => None,
            })
            .collect();
        if !leftovers.is_empty() {
            self.execute(leftovers);
        }
    }

    fn execute(&mut self, submissions: Vec<Submission>) {
        // 1. Deduplicate scenarios across the batch by spec fingerprint,
        //    registering each streaming submission once per fingerprint.
        struct UniqueJob {
            fingerprint: u64,
            spec: ScenarioSpec,
            subs: Vec<Sender<Reply>>,
        }
        let mut index_of: HashMap<u64, usize> = HashMap::new();
        let mut jobs: Vec<UniqueJob> = Vec::new();
        for sub in &submissions {
            let mut seen_here: HashSet<u64> = HashSet::new();
            for spec in &sub.specs {
                let fp = spec.fingerprint();
                let j = *index_of.entry(fp).or_insert_with(|| {
                    jobs.push(UniqueJob {
                        fingerprint: fp,
                        spec: spec.clone(),
                        subs: Vec::new(),
                    });
                    jobs.len() - 1
                });
                // Subscribe a streaming submission once per unique spec,
                // even if it asked for the same spec twice.
                if sub.stream && seen_here.insert(fp) {
                    jobs[j].subs.push(sub.reply.clone());
                }
            }
        }
        let duplicates = submissions
            .iter()
            .map(|s| s.specs.len() as u64)
            .sum::<u64>()
            .saturating_sub(jobs.len() as u64);

        // 2. Resolve against the result cache; build the rest.
        let mut resolved: HashMap<u64, CachedResult> = HashMap::new();
        let mut to_run: Vec<(usize, Scenario)> = Vec::new();
        let mut result_hits = 0u64;
        let mut result_misses = 0u64;
        for (j, job) in jobs.iter().enumerate() {
            if let Some(entry) = self.results.get(job.fingerprint) {
                result_hits += 1;
                let entry = entry.clone();
                // Replay the captured stream to this batch's subscribers.
                for sub in &job.subs {
                    for snap in entry.epochs.iter() {
                        let _ = sub.send(Reply::Epoch {
                            fingerprint: job.fingerprint,
                            snap: snap.clone(),
                        });
                    }
                }
                resolved.insert(job.fingerprint, entry);
                continue;
            }
            result_misses += 1;
            match job.spec.build() {
                Ok(scenario) => to_run.push((j, scenario)),
                Err(e) => {
                    // A build failure is as deterministic as a simulated
                    // result: serialize and memoize it the same way.
                    let slot = slot_json(
                        &job.spec.display_label(),
                        job.fingerprint,
                        &Err(SlotError {
                            error: ScenarioError::Failed {
                                detail: e.to_string(),
                            },
                            recovery: RecoveryRecord::default(),
                        }),
                    );
                    let entry = CachedResult {
                        slot,
                        epochs: Arc::new(Vec::new()),
                    };
                    self.put_result(job.fingerprint, entry.clone());
                    resolved.insert(job.fingerprint, entry);
                }
            }
        }

        // 3. Execute the misses as one shared batch, seeding pattern
        //    groups from the analysis LRU.
        let mut summary = BatchSummary {
            requests: submissions.len() as u64,
            unique_scenarios: jobs.len() as u64,
            ..BatchSummary::default()
        };
        let mut analysis_hits = 0u64;
        let mut solver_sum = SolverStats::default();
        if !to_run.is_empty() {
            let scenarios: Vec<Scenario> = to_run.iter().map(|(_, s)| s.clone()).collect();
            let logs: Vec<Arc<Mutex<Vec<EpochSnap>>>> = (0..scenarios.len())
                .map(|_| Arc::new(Mutex::new(Vec::new())))
                .collect();
            let subs: Vec<Arc<Vec<Sender<Reply>>>> = to_run
                .iter()
                .map(|(j, _)| Arc::new(jobs[*j].subs.clone()))
                .collect();
            let fps: Vec<u64> = to_run.iter().map(|(j, _)| jobs[*j].fingerprint).collect();
            let seed_hits = Mutex::new(0u64);
            let (report, _observers, fresh) = self.runner.run_scenarios_seeded_observed(
                &scenarios,
                |s: &Scenario| {
                    let got = lock_unpoisoned(&self.analyses)
                        .get(s.pattern_fingerprint())
                        .cloned();
                    if got.is_some() {
                        *lock_unpoisoned(&seed_hits) += 1;
                    }
                    got
                },
                |i, _s| StreamObserver {
                    fingerprint: fps[i],
                    log: Arc::clone(&logs[i]),
                    subs: Arc::clone(&subs[i]),
                },
            );
            analysis_hits = seed_hits
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            // Keep freshly donated analyses for future batches.
            let mut evictions = 0u64;
            for (rep, analysis) in fresh {
                if lock_unpoisoned(&self.analyses)
                    .put(scenarios[rep].pattern_fingerprint(), analysis)
                {
                    evictions += 1;
                }
            }
            summary.pattern_groups = report.pattern_groups as u64;
            summary.full_factorizations = report.total_full_factorizations();
            for outcome in report.outcomes() {
                accumulate(&mut solver_sum, &outcome.solver);
            }
            // Serialize, memoize, resolve.
            for (run_i, (j, scenario)) in to_run.iter().enumerate() {
                let fp = jobs[*j].fingerprint;
                let slot = slot_json(&scenario.label(), fp, &report.slots[run_i]);
                let epochs = Arc::new(lock_unpoisoned(&logs[run_i]).clone());
                let entry = CachedResult { slot, epochs };
                self.put_result(fp, entry.clone());
                resolved.insert(fp, entry);
            }
            {
                let mut stats = lock_unpoisoned(&self.stats);
                stats.cache.analysis_evictions += evictions;
            }
        }

        // 4. Publish counters *before* replying, so a client that reads
        //    `stats` right after its `done` event sees this batch.
        let analysis_misses = summary.pattern_groups.saturating_sub(analysis_hits);
        {
            let mut stats = lock_unpoisoned(&self.stats);
            stats.cache.requests += summary.requests;
            stats.cache.scenarios += jobs.len() as u64;
            stats.cache.batches += 1;
            stats.cache.coalesced_duplicates += duplicates;
            stats.cache.result_hits += result_hits;
            stats.cache.result_misses += result_misses;
            stats.cache.analysis_hits += analysis_hits;
            stats.cache.analysis_misses += analysis_misses;
            accumulate(&mut stats.solver, &solver_sum);
            stats.last_batch = summary;
        }

        // 5. Answer every submission in its own spec order.
        for sub in &submissions {
            let slots: Vec<Json> = sub
                .specs
                .iter()
                .map(|spec| {
                    resolved
                        .get(&spec.fingerprint())
                        .map(|e| e.slot.clone())
                        .expect("every fingerprint was resolved")
                })
                .collect();
            let _ = sub.reply.send(Reply::Done { slots });
        }
    }

    fn put_result(&mut self, fp: u64, entry: CachedResult) {
        if self.results.put(fp, entry) {
            lock_unpoisoned(&self.stats).cache.result_evictions += 1;
        }
    }
}

fn accumulate(into: &mut SolverStats, from: &SolverStats) {
    into.full_factorizations += from.full_factorizations;
    into.refactorizations += from.refactorizations;
    into.pivot_fallbacks += from.pivot_fallbacks;
    into.value_updates += from.value_updates;
    into.in_place_solves += from.in_place_solves;
    into.workspace_grows += from.workspace_grows;
    into.adopted_symbolics += from.adopted_symbolics;
    into.iterative_solves += from.iterative_solves;
    into.iterative_iterations += from.iterative_iterations;
    into.iterative_fallbacks += from.iterative_fallbacks;
    into.ilu_refreshes += from.ilu_refreshes;
    into.mg_cycles += from.mg_cycles;
    into.mg_smooth_sweeps += from.mg_smooth_sweeps;
    into.mg_coarse_solves += from.mg_coarse_solves;
}
