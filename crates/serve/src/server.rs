//! The daemon's listeners: newline-delimited JSON over a unix socket and
//! HTTP/1.1 on localhost, both hand-rolled over the standard library.
//!
//! Every connection speaks the [`protocol`](crate::protocol) event
//! vocabulary. The unix transport is symmetric NDJSON — one request per
//! line in, one event per line out. The HTTP transport maps the same
//! operations onto `POST /run` (response streamed as chunked NDJSON),
//! `GET /stats`, `GET /ping` and `POST /shutdown`.
//!
//! Shutdown is graceful by construction: the `shutdown` operation flips
//! the accept loops' stop flag, then drains the scheduler — every
//! already-accepted request still runs to completion and receives its
//! `done` event — before the acknowledgement is written. New submissions
//! arriving during the drain are refused with an `error` event.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::{obj, Json};
use crate::protocol::{done_event, epoch_event, error_event, solver_json, Request};
use crate::scheduler::{Reply, Scheduler, SchedulerConfig, StatsSnapshot};

/// Where and how a [`Server`] listens.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Unix-socket path (NDJSON transport). `None` disables it.
    pub socket: Option<PathBuf>,
    /// HTTP bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    /// `None` disables the HTTP transport.
    pub http: Option<String>,
    /// Scheduler tuning (threads, coalescing window, cache capacities).
    pub scheduler: SchedulerConfig,
}

/// A running daemon. Dropping it (or calling [`Server::shutdown`] then
/// [`Server::wait`]) stops the listeners and drains the scheduler.
pub struct Server {
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
    socket: Option<PathBuf>,
    http_addr: Option<SocketAddr>,
    acceptors: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Binds the configured listeners and spawns their accept loops.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let scheduler = Arc::new(Scheduler::start(config.scheduler));
        let stop = Arc::new(AtomicBool::new(false));
        let mut acceptors = Vec::new();
        let mut http_addr = None;

        if let Some(path) = &config.socket {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            let shared = Shared {
                scheduler: Arc::clone(&scheduler),
                stop: Arc::clone(&stop),
            };
            acceptors.push(std::thread::spawn(move || {
                accept_loop(|| listener.accept().map(|(s, _)| s), &shared, serve_ndjson);
            }));
        }

        if let Some(addr) = &config.http {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            http_addr = Some(listener.local_addr()?);
            let shared = Shared {
                scheduler: Arc::clone(&scheduler),
                stop: Arc::clone(&stop),
            };
            acceptors.push(std::thread::spawn(move || {
                accept_loop(|| listener.accept().map(|(s, _)| s), &shared, serve_http);
            }));
        }

        Ok(Server {
            scheduler,
            stop,
            socket: config.socket,
            http_addr,
            acceptors: Mutex::new(acceptors),
        })
    }

    /// The bound HTTP address (useful with an ephemeral `:0` port).
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The unix-socket path, when that transport is enabled.
    pub fn socket_path(&self) -> Option<&Path> {
        self.socket.as_deref()
    }

    /// Scheduler counters (what the `stats` operation reports).
    pub fn stats(&self) -> StatsSnapshot {
        self.scheduler.stats()
    }

    /// Initiates a graceful shutdown from the host process: stops the
    /// accept loops and drains the scheduler. Idempotent; also triggered
    /// remotely by the protocol's `shutdown` operation.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.scheduler.shutdown();
    }

    /// Blocks until the accept loops exit (after [`Server::shutdown`] or
    /// a remote `shutdown` request), then removes the socket file.
    pub fn wait(&self) {
        let handles: Vec<_> = self
            .acceptors
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.socket {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

#[derive(Clone)]
struct Shared {
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
}

/// Polls a nonblocking listener until the stop flag flips, handing every
/// connection to its own thread. Connection threads are detached — they
/// exit when their client disconnects or the request completes, and the
/// scheduler drain guarantees in-flight runs finish before the daemon's
/// shutdown acknowledgement.
fn accept_loop<S, A, H>(mut accept: A, shared: &Shared, handle: H)
where
    S: Send + 'static,
    A: FnMut() -> io::Result<S>,
    H: Fn(S, Shared) + Copy + Send + 'static,
{
    while !shared.stop.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => {
                let shared = shared.clone();
                std::thread::spawn(move || handle(stream, shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// The unix transport: one JSON request per line, events back as lines.
fn serve_ndjson(stream: UnixStream, shared: Shared) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let emit = &mut |event: &Json| writeln!(writer, "{}", event.encode());
        let done = dispatch_line(&line, &shared, emit);
        let _ = writer.flush();
        if done {
            break;
        }
    }
}

/// Parses one NDJSON line and runs the request, emitting events through
/// `emit`. Returns `true` when the connection should close (shutdown).
fn dispatch_line(
    line: &str,
    shared: &Shared,
    emit: &mut dyn FnMut(&Json) -> io::Result<()>,
) -> bool {
    let parsed = Json::parse(line)
        .map_err(|e| format!("malformed JSON: {e}"))
        .and_then(|v| Request::parse(&v));
    match parsed {
        Err(detail) => {
            let _ = emit(&error_event(None, &detail));
            false
        }
        Ok(Request::Ping) => {
            let _ = emit(&obj(vec![("event", Json::str("pong"))]));
            false
        }
        Ok(Request::Stats) => {
            let _ = emit(&stats_event(&shared.scheduler.stats()));
            false
        }
        Ok(Request::Shutdown) => {
            shared.stop.store(true, Ordering::SeqCst);
            shared.scheduler.shutdown(); // drains in-flight work
            let _ = emit(&obj(vec![("event", Json::str("bye"))]));
            true
        }
        Ok(Request::Run { id, stream, specs }) => {
            run_request(id.as_deref(), stream, specs, shared, emit);
            false
        }
    }
}

/// Submits a run and relays its reply stream to the client.
fn run_request(
    id: Option<&str>,
    stream: bool,
    specs: Vec<cmosaic::ScenarioSpec>,
    shared: &Shared,
    emit: &mut dyn FnMut(&Json) -> io::Result<()>,
) {
    // A spec may occupy several slots of one request; every slot gets
    // the (identical) epoch events of its fingerprint.
    let mut slots_of: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (i, spec) in specs.iter().enumerate() {
        slots_of.entry(spec.fingerprint()).or_default().push(i);
    }
    let rx: Receiver<Reply> = match shared.scheduler.submit(specs, stream) {
        Some(rx) => rx,
        None => {
            let _ = emit(&error_event(id, "server is shutting down"));
            return;
        }
    };
    for reply in rx {
        match reply {
            Reply::Epoch { fingerprint, snap } => {
                for &slot in slots_of.get(&fingerprint).map(Vec::as_slice).unwrap_or(&[]) {
                    let event = epoch_event(
                        id,
                        slot,
                        snap.epoch,
                        snap.time,
                        snap.peak_k,
                        snap.chip_w,
                        snap.pump_w,
                        snap.flow_m3s,
                    );
                    if emit(&event).is_err() {
                        return;
                    }
                }
            }
            Reply::Done { slots } => {
                let _ = emit(&done_event(id, slots));
                return;
            }
        }
    }
    // Channel closed without a Done: the worker is gone mid-drain.
    let _ = emit(&error_event(id, "server is shutting down"));
}

/// A [`StatsSnapshot`] as a `stats` event.
fn stats_event(s: &StatsSnapshot) -> Json {
    obj(vec![
        ("event", Json::str("stats")),
        (
            "cache",
            obj(vec![
                ("result_hits", Json::u64(s.cache.result_hits)),
                ("result_misses", Json::u64(s.cache.result_misses)),
                ("analysis_hits", Json::u64(s.cache.analysis_hits)),
                ("analysis_misses", Json::u64(s.cache.analysis_misses)),
                ("result_evictions", Json::u64(s.cache.result_evictions)),
                ("analysis_evictions", Json::u64(s.cache.analysis_evictions)),
                ("requests", Json::u64(s.cache.requests)),
                ("scenarios", Json::u64(s.cache.scenarios)),
                ("batches", Json::u64(s.cache.batches)),
                (
                    "coalesced_duplicates",
                    Json::u64(s.cache.coalesced_duplicates),
                ),
            ]),
        ),
        ("solver", solver_json(&s.solver)),
        (
            "last_batch",
            obj(vec![
                ("requests", Json::u64(s.last_batch.requests)),
                ("unique_scenarios", Json::u64(s.last_batch.unique_scenarios)),
                ("pattern_groups", Json::u64(s.last_batch.pattern_groups)),
                (
                    "full_factorizations",
                    Json::u64(s.last_batch.full_factorizations),
                ),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------- HTTP --

/// The HTTP transport: one request per connection (`Connection: close`).
fn serve_http(stream: TcpStream, shared: Shared) {
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;

    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return,
    };

    // Headers: we only care about Content-Length.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return;
    }
    let body = String::from_utf8_lossy(&body).into_owned();

    match (method.as_str(), path.as_str()) {
        ("POST", "/run") => http_run(&body, &shared, &mut writer),
        ("GET", "/stats") => {
            let payload = stats_event(&shared.scheduler.stats()).encode();
            let _ = write_http_json(&mut writer, "200 OK", &payload);
        }
        ("GET", "/ping") => {
            let payload = obj(vec![("event", Json::str("pong"))]).encode();
            let _ = write_http_json(&mut writer, "200 OK", &payload);
        }
        ("POST", "/shutdown") => {
            shared.stop.store(true, Ordering::SeqCst);
            shared.scheduler.shutdown();
            let payload = obj(vec![("event", Json::str("bye"))]).encode();
            let _ = write_http_json(&mut writer, "200 OK", &payload);
        }
        _ => {
            let payload = error_event(None, "no such endpoint").encode();
            let _ = write_http_json(&mut writer, "404 Not Found", &payload);
        }
    }
}

/// `POST /run`: body is the run request object (the `op` field is
/// implied by the path and may be omitted); the response streams every
/// event as chunked NDJSON.
fn http_run(body: &str, shared: &Shared, writer: &mut TcpStream) {
    let parsed = Json::parse(body)
        .map_err(|e| format!("malformed JSON body: {e}"))
        .map(|v| match v {
            Json::Obj(mut fields) => {
                if !fields.iter().any(|(k, _)| k == "op") {
                    fields.push(("op".to_string(), Json::str("run")));
                }
                Json::Obj(fields)
            }
            other => other,
        })
        .and_then(|v| Request::parse(&v));

    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if writer.write_all(head.as_bytes()).is_err() {
        return;
    }
    {
        let mut emit = |event: &Json| write_chunk(writer, &event.encode());
        match parsed {
            Ok(Request::Run { id, stream, specs }) => {
                run_request(id.as_deref(), stream, specs, shared, &mut emit);
            }
            Ok(_) => {
                let _ = emit(&error_event(None, "POST /run only accepts run requests"));
            }
            Err(detail) => {
                let _ = emit(&error_event(None, &detail));
            }
        }
    }
    let _ = writer.write_all(b"0\r\n\r\n");
    let _ = writer.flush();
}

fn write_chunk(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    // One NDJSON line (payload + '\n') per HTTP chunk.
    write!(writer, "{:x}\r\n{line}\n\r\n", line.len() + 1)?;
    writer.flush()
}

fn write_http_json(writer: &mut TcpStream, status: &str, payload: &str) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    writer.flush()
}
