//! The serve wire protocol: requests in, events out, all as single-line
//! JSON (see [`json`](crate::json) for the value model and its bit-exact
//! `f64` encoding).
//!
//! # Requests
//!
//! One JSON object per line:
//!
//! * `{"op":"run","id":"r1","stream":true,"specs":[{...},...]}` —
//!   execute scenarios. `id` is echoed on every event of the response
//!   (optional); `stream:true` additionally emits one `epoch` event per
//!   control interval per scenario.
//! * `{"op":"stats"}` — server counters (cache, coalescing, solver).
//! * `{"op":"ping"}` — liveness probe.
//! * `{"op":"shutdown"}` — graceful shutdown: drain in-flight work,
//!   refuse new connections, exit.
//!
//! # Spec objects
//!
//! Every field is optional; omitted fields keep the paper-baseline
//! defaults of [`ScenarioSpec::new`]. Unknown fields are rejected (a
//! typo must not silently simulate the wrong scenario). Fields:
//! `label`, `tiers`, `coolant` (`"air"`/`"water"`), `grid`
//! (`{"nx":..,"ny":..}`), `workload` (`"web-server"`, `"database"`,
//! `"multimedia"`, `"max-utilization"`), `policy` (`"ac-lb"`,
//! `"ac-tdvfs-lb"`, `"lc-lb"`, `"lc-fuzzy"`, `"lc-fuzzy-flow-only"`),
//! `solver` (`"direct"`/`"ilu0"`/`"mg"`), `seconds`, `seed`,
//! `thermal_dt`, `control_interval`, `threshold_celsius`,
//! `sensor_noise` (`{"std":..,"seed":..}`), `flow_ml_per_min`, and
//! `fault` (`{"panic_at":e}` or `{"nan_at":e,"cell":c}` — the test
//! harness for fault-isolation drills).
//!
//! # Response events
//!
//! `run` answers with zero or more `epoch` events followed by exactly one
//! `done` event carrying per-slot results in request order. The `done`
//! payload contains only *spec-pure* data (metrics, fingerprints,
//! deterministic failure reports), which is what makes the determinism
//! contract — identical request, bit-identical response — independent of
//! scheduling; scheduling-dependent counters answer `stats` instead.

use cmosaic::batch::{RecoveryRecord, ScenarioError, ScenarioOutcome, SlotError};
use cmosaic::fault::{FaultKind, FaultPlan};
use cmosaic::metrics::RunMetrics;
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::FlowSchedule;
use cmosaic::ScenarioSpec;
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::{Celsius, VolumetricFlow};
use cmosaic_power::trace::WorkloadKind;
use cmosaic_thermal::{SolverBackend, SolverStats};

use crate::json::{obj, Json};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute scenarios, optionally streaming per-epoch events.
    Run {
        /// Caller-chosen id echoed on every response event.
        id: Option<String>,
        /// Emit `epoch` events before the final `done`.
        stream: bool,
        /// The scenarios to run, in response-slot order.
        specs: Vec<ScenarioSpec>,
    },
    /// Server counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown.
    Shutdown,
}

impl Request {
    /// Parses a request object; the error string is safe to echo to the
    /// client verbatim.
    pub fn parse(v: &Json) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request must carry a string 'op' field")?;
        match op {
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "run" => {
                let id = v.get("id").and_then(Json::as_str).map(str::to_string);
                let stream = v.get("stream").and_then(Json::as_bool).unwrap_or(false);
                let specs = v
                    .get("specs")
                    .and_then(Json::as_arr)
                    .ok_or("run requires a 'specs' array")?;
                if specs.is_empty() {
                    return Err("run requires at least one spec".into());
                }
                let specs = specs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| parse_spec(s).map_err(|e| format!("spec {i}: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Run { id, stream, specs })
            }
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

/// Builds a [`ScenarioSpec`] from a protocol spec object (see the module
/// docs for the field list). Unknown fields are errors.
pub fn parse_spec(v: &Json) -> Result<ScenarioSpec, String> {
    let fields = v.as_obj().ok_or("spec must be an object")?;
    let mut spec = ScenarioSpec::new();
    let str_of = |val: &Json, what: &str| -> Result<String, String> {
        val.as_str()
            .map(str::to_string)
            .ok_or(format!("{what} must be a string"))
    };
    let usize_of = |val: &Json, what: &str| -> Result<usize, String> {
        val.as_usize().ok_or(format!("{what} must be an integer"))
    };
    let f64_of = |val: &Json, what: &str| -> Result<f64, String> {
        val.as_f64().ok_or(format!("{what} must be a number"))
    };
    for (key, val) in fields {
        spec = match key.as_str() {
            "label" => spec.label(str_of(val, "label")?),
            "tiers" => spec.tiers(usize_of(val, "tiers")?),
            "coolant" => match str_of(val, "coolant")?.as_str() {
                "air" => spec.air(),
                "water" => spec.water(),
                other => return Err(format!("unknown coolant '{other}' (air|water)")),
            },
            "grid" => {
                let nx = usize_of(val.get("nx").ok_or("grid requires nx")?, "grid.nx")?;
                let ny = usize_of(val.get("ny").ok_or("grid requires ny")?, "grid.ny")?;
                spec.grid(GridSpec::new(nx, ny).map_err(|e| e.to_string())?)
            }
            "workload" => spec.workload(match str_of(val, "workload")?.as_str() {
                "web-server" => WorkloadKind::WebServer,
                "database" => WorkloadKind::Database,
                "multimedia" => WorkloadKind::Multimedia,
                "max-utilization" => WorkloadKind::MaxUtilization,
                other => return Err(format!("unknown workload '{other}'")),
            }),
            "policy" => spec.policy(match str_of(val, "policy")?.as_str() {
                "ac-lb" => PolicyKind::AcLb,
                "ac-tdvfs-lb" => PolicyKind::AcTdvfsLb,
                "lc-lb" => PolicyKind::LcLb,
                "lc-fuzzy" => PolicyKind::LcFuzzy,
                "lc-fuzzy-flow-only" => PolicyKind::LcFuzzyFlowOnly,
                other => return Err(format!("unknown policy '{other}'")),
            }),
            "solver" => spec.solver(match str_of(val, "solver")?.as_str() {
                "direct" => SolverBackend::DirectLu,
                "ilu0" => SolverBackend::iterative(),
                "mg" => SolverBackend::multigrid(),
                other => return Err(format!("unknown solver '{other}' (direct|ilu0|mg)")),
            }),
            "seconds" => spec.seconds(usize_of(val, "seconds")?),
            "seed" => spec.seed(val.as_u64().ok_or("seed must be an integer")?),
            "thermal_dt" => spec.thermal_dt(f64_of(val, "thermal_dt")?),
            "control_interval" => spec.control_interval(f64_of(val, "control_interval")?),
            "threshold_celsius" => spec.threshold(Celsius(f64_of(val, "threshold_celsius")?)),
            "sensor_noise" => {
                let std = f64_of(val.get("std").ok_or("sensor_noise requires std")?, "std")?;
                let seed = val
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or("sensor_noise requires an integer seed")?;
                spec.sensor_noise(std, seed)
            }
            "flow_ml_per_min" => spec.flow_schedule(FlowSchedule::Fixed(
                VolumetricFlow::from_ml_per_min(f64_of(val, "flow_ml_per_min")?),
            )),
            "fault" => {
                if let Some(epoch) = val.get("panic_at") {
                    spec.fault_plan(
                        FaultPlan::none().at(usize_of(epoch, "fault.panic_at")?, FaultKind::Panic),
                    )
                } else if let Some(epoch) = val.get("nan_at") {
                    let cell = val.get("cell").and_then(Json::as_usize).unwrap_or(0);
                    spec.fault_plan(
                        FaultPlan::none()
                            .at(usize_of(epoch, "fault.nan_at")?, FaultKind::Nan { cell }),
                    )
                } else {
                    return Err("fault requires panic_at or nan_at".into());
                }
            }
            other => return Err(format!("unknown spec field '{other}'")),
        };
    }
    Ok(spec)
}

/// A fingerprint rendered the way every endpoint renders it: 16 lowercase
/// hex digits.
pub fn hex_fingerprint(fp: u64) -> String {
    format!("{fp:016x}")
}

/// [`RunMetrics`] as a JSON object. Every float goes through the
/// bit-exact encoder, so equal metrics always produce equal bytes.
pub fn metrics_json(m: &RunMetrics) -> Json {
    obj(vec![
        ("hotspot_time_per_core", Json::Num(m.hotspot_time_per_core)),
        ("hotspot_time_any", Json::Num(m.hotspot_time_any)),
        ("peak_temperature_k", Json::Num(m.peak_temperature.0)),
        ("chip_energy_j", Json::Num(m.chip_energy)),
        ("pump_energy_j", Json::Num(m.pump_energy)),
        ("perf_loss_mean", Json::Num(m.perf_loss_mean)),
        ("perf_loss_max", Json::Num(m.perf_loss_max)),
        (
            "mean_flow_m3s",
            m.mean_flow.map_or(Json::Null, |q| Json::Num(q.0)),
        ),
        ("seconds", Json::u64(m.seconds as u64)),
    ])
}

fn error_json(e: &ScenarioError) -> Json {
    match e {
        ScenarioError::Panicked { message } => obj(vec![
            ("kind", Json::str("panicked")),
            ("message", Json::str(message.clone())),
        ]),
        ScenarioError::Diverged { epoch, cell, value } => obj(vec![
            ("kind", Json::str("diverged")),
            ("epoch", Json::u64(*epoch as u64)),
            ("cell", Json::u64(*cell as u64)),
            ("value", Json::Num(*value)),
        ]),
        ScenarioError::Failed { detail } => obj(vec![
            ("kind", Json::str("failed")),
            ("detail", Json::str(detail.clone())),
        ]),
    }
}

fn recovery_json(r: &RecoveryRecord) -> Json {
    obj(vec![
        ("attempts", Json::u64(u64::from(r.attempts))),
        (
            "backend_demotions",
            Json::u64(u64::from(r.backend_demotions)),
        ),
        ("dt_halvings", Json::u64(u64::from(r.dt_halvings))),
    ])
}

/// One per-slot result of a `done` event: label, spec fingerprint, and
/// either metrics or a structured error, plus what the retry ladder did.
/// Everything here is a pure function of the spec.
pub fn slot_json(
    label: &str,
    fingerprint: u64,
    result: &Result<ScenarioOutcome, SlotError>,
) -> Json {
    let mut fields = vec![
        ("label", Json::str(label)),
        ("fingerprint", Json::str(hex_fingerprint(fingerprint))),
        ("ok", Json::Bool(result.is_ok())),
    ];
    match result {
        Ok(outcome) => {
            fields.push(("metrics", metrics_json(&outcome.metrics)));
            fields.push(("recovery", recovery_json(&outcome.recovery)));
        }
        Err(slot) => {
            fields.push(("error", error_json(&slot.error)));
            fields.push(("recovery", recovery_json(&slot.recovery)));
        }
    }
    obj(fields)
}

/// The terminal event of a `run` response.
pub fn done_event(id: Option<&str>, slots: Vec<Json>) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", Json::str(id)));
    }
    fields.push(("event", Json::str("done")));
    fields.push(("results", Json::Arr(slots)));
    obj(fields)
}

/// One streamed per-epoch event (only with `stream:true`). `slot` is the
/// scenario's position in the request; the payload is spec-pure, so a
/// request's event stream is as deterministic as its `done` payload.
#[allow(clippy::too_many_arguments)]
pub fn epoch_event(
    id: Option<&str>,
    slot: usize,
    epoch: usize,
    time: f64,
    peak_k: f64,
    chip_w: f64,
    pump_w: f64,
    flow: Option<f64>,
) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", Json::str(id)));
    }
    fields.extend([
        ("event", Json::str("epoch")),
        ("slot", Json::u64(slot as u64)),
        ("epoch", Json::u64(epoch as u64)),
        ("time_s", Json::Num(time)),
        ("peak_k", Json::Num(peak_k)),
        ("chip_w", Json::Num(chip_w)),
        ("pump_w", Json::Num(pump_w)),
        ("flow_m3s", flow.map_or(Json::Null, Json::Num)),
    ]);
    obj(fields)
}

/// An error event (malformed request, spec validation failure, refusal
/// during shutdown).
pub fn error_event(id: Option<&str>, detail: &str) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", Json::str(id)));
    }
    fields.push(("event", Json::str("error")));
    fields.push(("detail", Json::str(detail)));
    obj(fields)
}

/// Aggregated [`SolverStats`] as a JSON object (for `stats`).
pub fn solver_json(s: &SolverStats) -> Json {
    obj(vec![
        ("full_factorizations", Json::u64(s.full_factorizations)),
        ("refactorizations", Json::u64(s.refactorizations)),
        ("pivot_fallbacks", Json::u64(s.pivot_fallbacks)),
        ("adopted_symbolics", Json::u64(s.adopted_symbolics)),
        ("iterative_solves", Json::u64(s.iterative_solves)),
        ("in_place_solves", Json::u64(s.in_place_solves)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_parses_specs_and_options() {
        let v = Json::parse(
            r#"{"op":"run","id":"r1","stream":true,"specs":[
                {"tiers":4,"coolant":"water","grid":{"nx":6,"ny":6},
                 "workload":"database","policy":"lc-lb","solver":"direct",
                 "seconds":3,"seed":9,"threshold_celsius":80.0}]}"#,
        )
        .unwrap();
        match Request::parse(&v).unwrap() {
            Request::Run { id, stream, specs } => {
                assert_eq!(id.as_deref(), Some("r1"));
                assert!(stream);
                assert_eq!(specs.len(), 1);
                assert_eq!(specs[0].duration(), 3);
                assert_eq!(specs[0].trace_seed(), 9);
                assert_eq!(specs[0].policy_kind(), PolicyKind::LcLb);
                specs[0].build().expect("spec is buildable");
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_and_ops_are_rejected() {
        let bad = Json::parse(r#"{"op":"run","specs":[{"sedo":1}]}"#).unwrap();
        let err = Request::parse(&bad).unwrap_err();
        assert!(err.contains("unknown spec field 'sedo'"), "{err}");
        let bad = Json::parse(r#"{"op":"explode"}"#).unwrap();
        assert!(Request::parse(&bad).is_err());
        let bad = Json::parse(r#"{"op":"run","specs":[]}"#).unwrap();
        assert!(Request::parse(&bad).is_err());
    }

    #[test]
    fn control_ops_parse() {
        for (text, want) in [
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"ping"}"#, Request::Ping),
            (r#"{"op":"shutdown"}"#, Request::Shutdown),
        ] {
            assert_eq!(Request::parse(&Json::parse(text).unwrap()).unwrap(), want);
        }
    }

    #[test]
    fn fault_specs_parse_into_plans() {
        let v = Json::parse(r#"{"fault":{"panic_at":0}}"#).unwrap();
        let spec = parse_spec(&v).unwrap();
        assert_ne!(spec.fingerprint(), ScenarioSpec::new().fingerprint());
        let v = Json::parse(r#"{"fault":{"nan_at":1,"cell":3}}"#).unwrap();
        parse_spec(&v).unwrap();
        let v = Json::parse(r#"{"fault":{}}"#).unwrap();
        assert!(parse_spec(&v).is_err());
    }
}
