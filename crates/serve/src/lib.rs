//! Simulation-as-a-service: a long-running daemon over the CMOSAIC batch
//! engine.
//!
//! One-shot processes pay the whole cold-start bill — symbolic analysis,
//! operator caches, memoized evaluations — on every invocation. This
//! crate keeps a process warm and shares that work across callers:
//!
//! * **Coalescing** ([`scheduler`]): requests arriving within a short
//!   window are merged into one [`BatchRunner`](cmosaic::BatchRunner)
//!   batch, so one symbolic factorisation serves every in-flight request
//!   of the same `(stack, grid)` operator pattern.
//! * **Cross-request caching** ([`cache`]): an LRU keeps donated
//!   [`SharedAnalysis`](cmosaic_thermal::SharedAnalysis) instances keyed
//!   by pattern fingerprint, and finished per-scenario results keyed by
//!   the spec's stable [`fingerprint`](cmosaic::ScenarioSpec::fingerprint)
//!   — a warm pattern costs zero full factorisations, a repeated spec
//!   costs zero simulation.
//! * **Protocol** ([`protocol`], [`server`]): newline-delimited JSON over
//!   a unix socket, plus HTTP/1.1 on localhost (`POST /run` streaming
//!   chunked NDJSON, `GET /stats`, `POST /shutdown`). The JSON itself is
//!   the hand-rolled [`json`] module with bit-exact `f64` round-trips.
//!
//! # Determinism contract
//!
//! An identical request yields a bit-identical `done` payload regardless
//! of batching, concurrency, coalescing-window timing, or cache warmth.
//! This leans on a property of the engine underneath: analysis donation
//! is bit-neutral (donor and adopter normalise onto the same numeric
//! sweep), so every scenario outcome is a pure bitwise function of its
//! spec. Run responses therefore carry only spec-pure data — metrics,
//! fingerprints, deterministic failure reports; solver and cache
//! counters, which *do* depend on scheduling, live on the separate
//! `stats` endpoint.
//!
//! # Fault isolation
//!
//! A panicking or diverging scenario fails only its own slot, through the
//! batch engine's retry ladder and `catch_unwind` isolation; co-batched
//! requests complete normally and the daemon keeps serving.

pub mod cache;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use cache::{CacheStats, Lru};
pub use json::Json;
pub use protocol::Request;
pub use scheduler::{Scheduler, SchedulerConfig, StatsSnapshot};
pub use server::{Server, ServerConfig};
