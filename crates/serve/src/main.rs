//! `cmosaic-serve` — the simulation daemon. See the library crate docs
//! for the protocol; run with `--help` for the flags.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use cmosaic_serve::scheduler::SchedulerConfig;
use cmosaic_serve::server::{Server, ServerConfig};

const USAGE: &str = "\
cmosaic-serve — CMOSAIC simulation daemon

USAGE:
    cmosaic-serve [OPTIONS]

OPTIONS:
    --socket <PATH>        unix socket to listen on (NDJSON transport)
                           [default: cmosaic-serve.sock when --http is absent]
    --http <ADDR>          HTTP/1.1 bind address, e.g. 127.0.0.1:8191
                           (use port 0 for an ephemeral port)
    --threads <N>          batch worker threads [default: 4]
    --window-ms <N>        request coalescing window in ms [default: 10]
    --analysis-cache <N>   pattern->analysis LRU capacity [default: 32]
    --result-cache <N>     spec->result LRU capacity [default: 256]
    --help                 print this help
";

fn main() -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut http: Option<String> = None;
    let mut scheduler = SchedulerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parsed: Result<(), String> = match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--socket" => value("--socket").map(|v| socket = Some(PathBuf::from(v))),
            "--http" => value("--http").map(|v| http = Some(v)),
            "--threads" => {
                parse_num(value("--threads"), "--threads").map(|n| scheduler.threads = n)
            }
            "--window-ms" => parse_num(value("--window-ms"), "--window-ms")
                .map(|n: u64| scheduler.window = Duration::from_millis(n)),
            "--analysis-cache" => parse_num(value("--analysis-cache"), "--analysis-cache")
                .map(|n| scheduler.analysis_cache = n),
            "--result-cache" => parse_num(value("--result-cache"), "--result-cache")
                .map(|n| scheduler.result_cache = n),
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    if socket.is_none() && http.is_none() {
        socket = Some(PathBuf::from("cmosaic-serve.sock"));
    }

    let config = ServerConfig {
        socket,
        http,
        scheduler,
    };
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = server.socket_path() {
        println!("listening on unix socket {}", path.display());
    }
    if let Some(addr) = server.http_addr() {
        println!("listening on http://{addr}");
    }
    // Runs until a client sends the `shutdown` operation.
    server.wait();
    println!("drained and stopped");
    ExitCode::SUCCESS
}

fn parse_num<T: std::str::FromStr>(value: Result<String, String>, flag: &str) -> Result<T, String> {
    let v = value?;
    v.parse()
        .map_err(|_| format!("{flag}: '{v}' is not a valid number"))
}
