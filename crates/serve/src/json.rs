//! Minimal self-contained JSON: the wire format of the serve protocol.
//!
//! Hand-rolled because the build environment has no crates.io access, and
//! deliberately tiny — one value enum, one encoder, one recursive-descent
//! parser — but with a property the usual libraries do not give:
//! **bit-exact `f64` round-trips**. Finite floats are emitted through
//! Rust's shortest-round-trip `Display` and re-read by the standard
//! library's correctly-rounded parser, so `encode(parse(encode(x)))` is
//! the identity on the *bit pattern*, not just the approximate value.
//! Non-finite floats, which plain JSON cannot carry at all, travel as a
//! single-key escape object `{"$hexf64":"<16 hex digits>"}` holding the
//! IEEE-754 bits — the same hex-bits convention the checkpoint journal
//! uses on disk. The parser folds the escape back into a number, so the
//! escape is invisible above this module.
//!
//! Object keys keep their insertion order (an object is a `Vec` of
//! pairs): encoding is deterministic, which the serve determinism
//! contract — identical request, bit-identical response bytes — relies
//! on.

use std::fmt;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// rather than risking a stack overflow on hostile requests.
const MAX_DEPTH: usize = 64;

/// Key of the escape object carrying an `f64` as its IEEE-754 bits.
const HEX_F64_KEY: &str = "$hexf64";

/// A JSON value. Numbers are always `f64` (the only number JSON has);
/// integers that cannot survive the `f64` mantissa are sent as strings by
/// [`Json::u64`] and read back by [`Json::as_u64`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, including non-finite values (see the module docs).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs, first match wins on lookup.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus what was expected there.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// String value (shorthand constructor).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A `u64` as JSON: a plain number while the value fits the `f64`
    /// mantissa exactly, a decimal string beyond that (seeds and
    /// fingerprints may use all 64 bits).
    pub fn u64(v: u64) -> Json {
        if v <= (1u64 << 53) {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    /// Object member by key (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact `u64`: accepts an integral in-range number,
    /// or a decimal string (the [`Json::u64`] overflow form).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) => {
                if v.fract() == 0.0 && *v >= 0.0 && *v <= (1u64 << 53) as f64 {
                    Some(*v as u64)
                } else {
                    None
                }
            }
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The ordered key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to compact JSON (no whitespace). Deterministic: equal
    /// values — including NaN bit patterns — produce equal bytes.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip decimal; `str::parse::<f64>` is
                    // correctly rounded, so this is bit-exact.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str(&format!("{{\"{HEX_F64_KEY}\":\"{:016x}\"}}", v.to_bits()));
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error. The `{"$hexf64":...}` escape decodes back to [`Json::Num`].
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(value)
    }
}

/// Convenience constructor for ordered objects.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    // Fold the non-finite escape back into a number.
                    if let [(k, Json::Str(hex))] = &fields[..] {
                        if k == HEX_F64_KEY && hex.len() == 16 {
                            if let Ok(bits) = u64::from_str_radix(hex, 16) {
                                return Ok(Json::Num(f64::from_bits(bits)));
                            }
                        }
                    }
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let n = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(n)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`), advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            detail: format!("invalid number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\"", "[]", "{}"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.encode(), text);
        }
    }

    #[test]
    fn nested_values_round_trip() {
        let text =
            r#"{"op":"run","specs":[{"seed":42,"grid":{"rows":6,"cols":6}}],"ok":true,"x":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.encode(), text);
        assert_eq!(
            v.get("specs").unwrap().as_arr().unwrap()[0]
                .get("seed")
                .unwrap()
                .as_u64(),
            Some(42)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quote\" back\\slash tab\t nul\u{0} é 日本 \u{1F600}";
        let encoded = Json::Str(original.to_string()).encode();
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(original));
        // Foreign encoders may use \u escapes and surrogate pairs.
        assert_eq!(
            Json::parse(r#""\u00e9 \ud83d\ude00 \/""#).unwrap().as_str(),
            Some("é 😀 /")
        );
    }

    #[test]
    fn non_finite_floats_use_the_hex_escape() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let encoded = Json::Num(v).encode();
            assert!(encoded.contains("$hexf64"), "{encoded}");
            let back = Json::parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // A genuine single-key object that merely resembles the escape
        // (wrong hex width) stays an object.
        let v = Json::parse(r#"{"$hexf64":"zz"}"#).unwrap();
        assert!(matches!(v, Json::Obj(_)));
    }

    #[test]
    fn u64_values_survive_beyond_the_mantissa() {
        for v in [0u64, 53, 1 << 53, u64::MAX, 0xadde_c23b_3d36_bb47] {
            let back = Json::parse(&Json::u64(v).encode()).unwrap();
            assert_eq!(back.as_u64(), Some(v));
        }
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn malformed_input_is_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"open",
            "01x",
            "nul",
            "[1]2",
            "{\"a\":}",
            "\"\\u12\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth cap");
    }

    proptest! {
        /// Every f64 bit pattern — subnormals, NaN payloads, infinities —
        /// survives encode→parse bit-exactly.
        #[test]
        fn f64_bits_round_trip(bits in 0u64..=u64::MAX) {
            let v = f64::from_bits(bits);
            let back = Json::parse(&Json::Num(v).encode()).unwrap();
            prop_assert_eq!(back.as_f64().unwrap().to_bits(), bits);
        }

        /// Randomly composed values re-encode to the same bytes after a
        /// parse round trip (encoding is canonical).
        #[test]
        fn composite_values_round_trip(
            seeds in collection::vec(0u64..=u64::MAX, 1..8),
            flag in 0u8..2,
            text in -1.0e18f64..1.0e18,
        ) {
            let value = obj(vec![
                ("op", Json::str("run")),
                ("flag", Json::Bool(flag == 1)),
                ("x", Json::Num(text)),
                ("specs", Json::Arr(
                    seeds.iter().map(|&s| obj(vec![
                        ("seed", Json::u64(s)),
                        ("f", Json::Num(f64::from_bits(s))),
                    ])).collect(),
                )),
            ]);
            let encoded = value.encode();
            let reparsed = Json::parse(&encoded).unwrap();
            prop_assert_eq!(reparsed.encode(), encoded);
        }
    }
}
