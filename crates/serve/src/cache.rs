//! Cross-request caches: a small fingerprint-keyed LRU plus the counters
//! surfaced on the `stats` endpoint.
//!
//! Keys are 64-bit FNV-1a fingerprints
//! ([`ScenarioSpec::fingerprint`](cmosaic::ScenarioSpec::fingerprint) for
//! results, [`Scenario::pattern_fingerprint`](cmosaic::Scenario) for
//! analyses). A key collision between *different* values is
//! astronomically unlikely, and for the analysis cache it is additionally
//! harmless: adoption re-checks the operator signature and falls back to
//! a fresh factorisation, so a collision costs one factorisation, never
//! correctness.

/// A tiny least-recently-used map over `u64` keys. Linear scan over a
/// `Vec` — capacities here are tens of entries, where a scan beats any
/// hashed structure and keeps iteration order (MRU first) trivially
/// deterministic. Capacity 0 disables the cache entirely (every `get`
/// misses, every `put` is dropped), which is how the benchmarks and
/// tests model a cold server.
#[derive(Debug)]
pub struct Lru<V> {
    cap: usize,
    entries: Vec<(u64, V)>,
}

impl<V> Lru<V> {
    /// An LRU holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Lru {
            cap,
            entries: Vec::new(),
        }
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let i = self.entries.iter().position(|(k, _)| *k == key)?;
        let hit = self.entries.remove(i);
        self.entries.insert(0, hit);
        Some(&self.entries[0].1)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full. Returns `true` when an eviction happened.
    pub fn put(&mut self, key: u64, value: V) -> bool {
        if self.cap == 0 {
            return false;
        }
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.insert(0, (key, value));
        if self.entries.len() > self.cap {
            self.entries.pop();
            return true;
        }
        false
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Monotonic counters describing how well the cross-request caches and
/// the coalescer are doing. All counters are cumulative since server
/// start; they are scheduling-dependent by nature and therefore live on
/// the `stats` endpoint, never in a `run` response.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Scenario results served straight from the result LRU.
    pub result_hits: u64,
    /// Scenario results that had to be simulated.
    pub result_misses: u64,
    /// Pattern groups whose symbolic analysis came from the LRU (zero
    /// full factorisations for that group).
    pub analysis_hits: u64,
    /// Pattern groups factorised fresh (the analysis was then cached).
    pub analysis_misses: u64,
    /// Evictions from the result LRU.
    pub result_evictions: u64,
    /// Evictions from the analysis LRU.
    pub analysis_evictions: u64,
    /// Requests answered (a coalesced batch counts each of its requests).
    pub requests: u64,
    /// Unique scenarios executed or replayed across all requests.
    pub scenarios: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Scenarios deduplicated away inside coalesced batches (same spec
    /// fingerprint requested more than once in one window).
    pub coalesced_duplicates: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        assert!(!lru.put(1, "a"));
        assert!(!lru.put(2, "b"));
        assert_eq!(lru.get(1), Some(&"a")); // 1 is now MRU
        assert!(lru.put(3, "c")); // evicts 2
        assert_eq!(lru.get(2), None);
        assert_eq!(lru.get(1), Some(&"a"));
        assert_eq!(lru.get(3), Some(&"c"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut lru = Lru::new(0);
        assert!(!lru.put(1, "a"));
        assert_eq!(lru.get(1), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn reinserting_a_key_refreshes_in_place() {
        let mut lru = Lru::new(2);
        lru.put(1, "a");
        lru.put(2, "b");
        lru.put(1, "a2"); // refresh, no eviction
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(1), Some(&"a2"));
        assert_eq!(lru.get(2), Some(&"b"));
    }
}
