//! The UltraSPARC T1 power model.
//!
//! Calibration targets (paper ref. \[13], Leon et al. ISSCC'07: a 63 W-class
//! 8-core chip, peak ≈ average power):
//!
//! * a fully-utilised core at nominal V/f draws ≈ 4.5 W dynamic,
//! * an idle core still clocks at ≈ 0.9 W,
//! * an L2 bank draws 0.7–1.6 W depending on load,
//! * leakage adds ≈ 1 W per core at 60 °C and grows exponentially with
//!   temperature (`exp(γ·ΔT)`, doubling every ~50 K) — the feedback that
//!   produces the 4-tier air-cooled runaway of §IV.A.

use crate::dvfs::VfTable;
use crate::PowerError;
use cmosaic_floorplan::plan::{ElementKind, Floorplan};
use cmosaic_materials::units::Kelvin;

/// Exponential-in-temperature, proportional-to-area leakage model with
/// saturation.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageModel {
    /// Leakage power density at the reference temperature, W/m².
    pub density_at_ref: f64,
    /// Exponential coefficient, 1/K.
    pub gamma: f64,
    /// Reference temperature.
    pub t_ref: Kelvin,
    /// Upper bound on the exponential multiplier. Sub-threshold leakage
    /// growth flattens at very high junction temperatures (and the package
    /// would fail first); the cap also keeps the electrothermal fixed point
    /// bounded, mirroring the paper's 4-tier air-cooled observation of
    /// temperatures "reaching up to 178 °C" rather than diverging.
    pub max_multiplier: f64,
}

impl LeakageModel {
    /// The 90 nm-node model used for the Niagara MPSoCs: ~0.8 W per 10 mm²
    /// core at 60 °C, doubling roughly every 55 K, saturating at 3.5× the
    /// reference density.
    pub fn niagara_90nm() -> Self {
        LeakageModel {
            density_at_ref: 0.8e5,
            gamma: 0.0127,
            t_ref: Kelvin::from_celsius(60.0),
            max_multiplier: 3.5,
        }
    }

    /// Leakage power (W) of a block of `area` m² at temperature `t`.
    ///
    /// Voltage scaling also reduces leakage (roughly linearly in V); the
    /// `voltage_ratio` argument is `V/V_nom`.
    pub fn power(&self, area: f64, t: Kelvin, voltage_ratio: f64) -> f64 {
        let mult = (self.gamma * (t - self.t_ref))
            .exp()
            .min(self.max_multiplier);
        self.density_at_ref * area * mult * voltage_ratio
    }
}

/// The complete element-level power model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Dynamic power of a fully-utilised core at nominal V/f, W.
    pub core_dynamic_max: f64,
    /// Dynamic power of an idle (but clocked) core at nominal V/f, W.
    pub core_idle: f64,
    /// Dynamic power of a fully-utilised L2 bank, W.
    pub l2_dynamic_max: f64,
    /// Dynamic power of an idle L2 bank, W.
    pub l2_idle: f64,
    /// Crossbar dynamic power at full system utilization, W.
    pub xbar_dynamic_max: f64,
    /// Crossbar idle power, W.
    pub xbar_idle: f64,
    /// Constant power of `Other` blocks, W per m² (small I/O load).
    pub other_density: f64,
    /// Fraction of the core leakage *density* that applies to uncore
    /// blocks (L2 SRAM, crossbar wiring, I/O). SRAM and interconnect leak
    /// far less per unit area than high-speed logic; the calibrated idle
    /// terms above anchor the uncore power at the leakage reference
    /// temperature, and this scale sets how much of it swings with T (see
    /// [`PowerModel::l2_power`]).
    pub uncore_leakage_scale: f64,
    /// Leakage model.
    pub leakage: LeakageModel,
    /// DVFS operating points.
    pub vf: VfTable,
}

impl PowerModel {
    /// The calibrated Niagara-1 model (see module docs). The free
    /// parameters are anchored on the paper's reported operating points
    /// (2-tier AC_LB peak ≈ 87 °C, LC_LB peak ≈ 56 °C at maximum flow,
    /// 4-tier AC_LB up to ≈ 178 °C) and then held fixed across every
    /// experiment.
    pub fn niagara() -> Self {
        PowerModel {
            core_dynamic_max: 3.6,
            core_idle: 0.95,
            l2_dynamic_max: 1.3,
            l2_idle: 0.8,
            xbar_dynamic_max: 2.0,
            xbar_idle: 0.5,
            other_density: 2.0e4, // 0.2 W per 10 mm²
            uncore_leakage_scale: 0.15,
            leakage: LeakageModel::niagara_90nm(),
            vf: VfTable::niagara(),
        }
    }

    /// Temperature-dependent *excess* leakage of an uncore block over its
    /// calibrated anchor at the leakage reference temperature: zero at
    /// `t_ref`, positive when hotter, slightly negative when colder (the
    /// anchor terms below already include the reference-temperature
    /// leakage). Shares the exponential/saturation shape of
    /// [`LeakageModel`], scaled down by [`PowerModel::uncore_leakage_scale`].
    fn uncore_leakage_excess(&self, area: f64, t: Kelvin) -> f64 {
        let at_t = self.leakage.power(area * self.uncore_leakage_scale, t, 1.0);
        let at_ref = self
            .leakage
            .power(area * self.uncore_leakage_scale, self.leakage.t_ref, 1.0);
        at_t - at_ref
    }

    /// Dynamic + leakage power of one core.
    ///
    /// `demand` is the offered load as a fraction of *nominal* throughput;
    /// the served occupancy saturates at 1 when the DVFS level is too slow.
    /// Out-of-range demands are clamped to `[0, 1]`; out-of-range levels to
    /// the slowest point.
    pub fn core_power(&self, demand: f64, vf_level: usize, t: Kelvin) -> f64 {
        let demand = demand.clamp(0.0, 1.0);
        let occ = self.vf.occupancy(demand, vf_level);
        let scale = self.vf.dynamic_scale(vf_level);
        let v_ratio = {
            let lvl = vf_level.min(self.vf.slowest());
            self.vf.point(lvl).expect("clamped level").voltage
                / self.vf.point(0).expect("nominal").voltage
        };
        let dynamic = (self.core_idle + (self.core_dynamic_max - self.core_idle) * occ) * scale;
        let leak = self
            .leakage
            .power(cmosaic_floorplan::niagara::CORE_AREA, t, v_ratio);
        dynamic + leak
    }

    /// Power of one L2 bank serving cores at mean utilization `util`
    /// (clamped to `[0, 1]`), at junction temperature `t`. Caches are not
    /// DVFS-scaled (they run on the uncore supply). The idle term anchors
    /// the bank's power — including its SRAM leakage — at the leakage
    /// reference temperature; away from it the leakage share swings with
    /// the usual exponential (at [`PowerModel::uncore_leakage_scale`] of
    /// the logic density, SRAM leaking far less per area), closing the
    /// electrothermal loop for every block kind, not just the cores.
    pub fn l2_power(&self, util: f64, t: Kelvin) -> f64 {
        let util = util.clamp(0.0, 1.0);
        self.l2_idle
            + (self.l2_dynamic_max - self.l2_idle) * util
            + self.uncore_leakage_excess(cmosaic_floorplan::niagara::L2_AREA, t)
    }

    /// Crossbar power at mean system utilization `util` over an element of
    /// `area` m² at temperature `t` (temperature-dependent interconnect
    /// leakage on top of the calibrated anchor, see
    /// [`PowerModel::l2_power`]).
    pub fn xbar_power(&self, util: f64, area: f64, t: Kelvin) -> f64 {
        let util = util.clamp(0.0, 1.0);
        self.xbar_idle
            + (self.xbar_dynamic_max - self.xbar_idle) * util
            + self.uncore_leakage_excess(area, t)
    }

    /// Power of an `Other` block of `area` m² at temperature `t` (constant
    /// dynamic density plus temperature-dependent leakage excess).
    pub fn other_power(&self, area: f64, t: Kelvin) -> f64 {
        self.other_density * area + self.uncore_leakage_excess(area, t)
    }

    /// Per-element powers for one tier.
    ///
    /// * For a **core tier**: `core_demands` and `core_vf` must have one
    ///   entry per core element (in element order); the crossbar uses the
    ///   mean demand.
    /// * For a **cache tier**: each L2 bank uses the mean of
    ///   `core_demands` (the load its two cores offer is approximated by
    ///   the system mean; the paper's cache power is utilization-driven in
    ///   the same way).
    ///
    /// `temps` holds one temperature per element of the plan.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::LengthMismatch`] if `temps` does not match the
    /// element count, or if a core tier gets mismatched demand/VF vectors.
    pub fn tier_powers(
        &self,
        plan: &Floorplan,
        core_demands: &[f64],
        core_vf: &[usize],
        temps: &[Kelvin],
    ) -> Result<Vec<f64>, PowerError> {
        if temps.len() != plan.elements().len() {
            return Err(PowerError::LengthMismatch {
                detail: format!(
                    "temps length {} != {} elements",
                    temps.len(),
                    plan.elements().len()
                ),
            });
        }
        let core_indices = plan.indices_of_kind(ElementKind::Core);
        if !core_indices.is_empty()
            && (core_demands.len() != core_indices.len() || core_vf.len() != core_indices.len())
        {
            return Err(PowerError::LengthMismatch {
                detail: format!(
                    "core tier has {} cores but got {} demands / {} VF levels",
                    core_indices.len(),
                    core_demands.len(),
                    core_vf.len()
                ),
            });
        }
        let mean_demand = if core_demands.is_empty() {
            0.0
        } else {
            core_demands.iter().sum::<f64>() / core_demands.len() as f64
        };

        let mut out = Vec::with_capacity(plan.elements().len());
        let mut core_cursor = 0usize;
        for (i, e) in plan.elements().iter().enumerate() {
            let p = match e.kind() {
                ElementKind::Core => {
                    let p =
                        self.core_power(core_demands[core_cursor], core_vf[core_cursor], temps[i]);
                    core_cursor += 1;
                    p
                }
                ElementKind::L2Cache => self.l2_power(mean_demand, temps[i]),
                ElementKind::Crossbar => self.xbar_power(mean_demand, e.area(), temps[i]),
                ElementKind::Other => self.other_power(e.area(), temps[i]),
                ElementKind::Memory | ElementKind::Accelerator => {
                    // The homogeneous Niagara model has no DRAM/accelerator
                    // budget — heterogeneous tiers go through the
                    // `PowerAllocator`, which prices every kind.
                    return Err(PowerError::BlockMismatch {
                        detail: format!(
                            "element `{}` is a {} block; use a PowerAllocator for \
                             heterogeneous tiers",
                            e.name(),
                            e.kind()
                        ),
                    });
                }
            };
            out.push(p);
        }
        Ok(out)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::niagara()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_floorplan::niagara;

    #[test]
    fn core_power_increases_with_load_and_temperature() {
        let m = PowerModel::niagara();
        let cold = Kelvin::from_celsius(45.0);
        let hot = Kelvin::from_celsius(85.0);
        let idle = m.core_power(0.0, 0, cold);
        let busy = m.core_power(1.0, 0, cold);
        let busy_hot = m.core_power(1.0, 0, hot);
        assert!(busy > idle);
        assert!(busy_hot > busy, "leakage must grow with temperature");
        // Calibration: busy core at 45 °C in the 3.8-5.5 W range (the
        // 63 W-class chip budget spread over 8 cores + uncore).
        assert!(busy > 3.8 && busy < 5.5, "busy = {busy}");
    }

    #[test]
    fn dvfs_reduces_power() {
        let m = PowerModel::niagara();
        let t = Kelvin::from_celsius(60.0);
        let nominal = m.core_power(0.5, 0, t);
        let scaled = m.core_power(0.5, 3, t);
        assert!(scaled < nominal);
    }

    #[test]
    fn leakage_doubles_in_about_fifty_kelvin_and_saturates() {
        let l = LeakageModel::niagara_90nm();
        let p60 = l.power(10e-6, Kelvin::from_celsius(60.0), 1.0);
        let p110 = l.power(10e-6, Kelvin::from_celsius(110.0), 1.0);
        let ratio = p110 / p60;
        assert!(ratio > 1.7 && ratio < 2.2, "ratio = {ratio}");
        assert!(
            (p60 - 0.8).abs() < 0.05,
            "~0.8 W per core at 60 °C, got {p60}"
        );
        // Saturation: the multiplier is capped, so very hot junctions do
        // not leak unboundedly (prevents unphysical electrothermal
        // divergence).
        let p200 = l.power(10e-6, Kelvin::from_celsius(200.0), 1.0);
        let p300 = l.power(10e-6, Kelvin::from_celsius(300.0), 1.0);
        assert_eq!(p200, p300, "leakage must saturate");
        assert!((p200 / p60 - 3.5).abs() < 1e-9);
    }

    #[test]
    fn uncore_power_rises_with_temperature() {
        // Satellite fix: l2/xbar/other used to ignore their temperature
        // argument entirely — every block kind must now close the
        // electrothermal loop.
        let m = PowerModel::niagara();
        let cool = Kelvin::from_celsius(45.0);
        let ref_t = m.leakage.t_ref;
        let hot = Kelvin::from_celsius(95.0);
        assert!(m.l2_power(0.5, hot) > m.l2_power(0.5, cool));
        assert!(m.xbar_power(0.5, 35e-6, hot) > m.xbar_power(0.5, 35e-6, cool));
        assert!(m.other_power(39e-6, hot) > m.other_power(39e-6, cool));
        // The calibrated anchors are exact at the leakage reference
        // temperature (the excess term vanishes there), so the Niagara
        // calibration bands are untouched.
        assert!((m.l2_power(0.0, ref_t) - m.l2_idle).abs() < 1e-12);
        assert!((m.l2_power(1.0, ref_t) - m.l2_dynamic_max).abs() < 1e-12);
        assert!((m.xbar_power(0.0, 35e-6, ref_t) - m.xbar_idle).abs() < 1e-12);
        // The swing saturates with the same cap as core leakage.
        let p200 = m.l2_power(0.5, Kelvin::from_celsius(200.0));
        let p300 = m.l2_power(0.5, Kelvin::from_celsius(300.0));
        assert_eq!(p200, p300);
    }

    #[test]
    fn heterogeneous_tier_is_rejected_by_the_homogeneous_model() {
        let m = PowerModel::niagara();
        let mem = niagara::memory_tier().unwrap();
        let t = vec![Kelvin::from_celsius(60.0); mem.elements().len()];
        let err = m.tier_powers(&mem, &[], &[], &t);
        assert!(matches!(err, Err(crate::PowerError::BlockMismatch { .. })));
    }

    #[test]
    fn chip_total_is_niagara_class() {
        // A fully-busy 2-tier system (core tier + cache tier) at 70 °C
        // should land in the 40-55 W band of the 63 W-class part after the
        // anchor calibration (see DESIGN.md §3).
        let m = PowerModel::niagara();
        let t = Kelvin::from_celsius(70.0);
        let core_tier: f64 =
            (0..8).map(|_| m.core_power(1.0, 0, t)).sum::<f64>() + m.xbar_power(1.0, 35e-6, t);
        let cache_tier: f64 =
            (0..4).map(|_| m.l2_power(1.0, t)).sum::<f64>() + m.other_power(39e-6, t);
        let total = core_tier + cache_tier;
        assert!(total > 40.0 && total < 55.0, "2-tier chip = {total}");
    }

    #[test]
    fn tier_powers_for_core_and_cache_tiers() {
        let m = PowerModel::niagara();
        let cores = niagara::core_tier().unwrap();
        let caches = niagara::cache_tier().unwrap();
        let demands = [0.5; 8];
        let vf = [0usize; 8];
        let t_core = vec![Kelvin::from_celsius(60.0); cores.elements().len()];
        let t_cache = vec![Kelvin::from_celsius(55.0); caches.elements().len()];
        let p_core = m.tier_powers(&cores, &demands, &vf, &t_core).unwrap();
        assert_eq!(p_core.len(), 9); // 8 cores + xbar
        let p_cache = m.tier_powers(&caches, &demands, &vf, &t_cache).unwrap();
        assert_eq!(p_cache.len(), 5); // 4 L2 + directory
        assert!(p_core.iter().all(|&p| p > 0.0));
        assert!(p_cache.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn tier_powers_validates_lengths() {
        let m = PowerModel::niagara();
        let cores = niagara::core_tier().unwrap();
        let bad = m.tier_powers(
            &cores,
            &[0.5; 4],
            &[0; 4],
            &vec![Kelvin::from_celsius(60.0); cores.elements().len()],
        );
        assert!(bad.is_err());
        let bad_temps = m.tier_powers(&cores, &[0.5; 8], &[0; 8], &[Kelvin(300.0)]);
        assert!(bad_temps.is_err());
    }

    #[test]
    fn demands_are_clamped() {
        let m = PowerModel::niagara();
        let t = Kelvin::from_celsius(60.0);
        assert_eq!(m.core_power(1.5, 0, t), m.core_power(1.0, 0, t));
        assert_eq!(m.core_power(-0.5, 0, t), m.core_power(0.0, 0, t));
    }
}
