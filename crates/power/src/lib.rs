//! UltraSPARC T1 power modelling, DVFS and synthetic workload traces.
//!
//! §IV.A of the paper drives its experiments with utilization traces
//! recorded from real applications (web server, database, multimedia) on an
//! UltraSPARC T1, sampled every second, and computes power as:
//!
//! * **dynamic power** from per-core utilization (peak ≈ average for the
//!   T1, paper ref. \[13]), scaled by the DVFS operating point as `u·V²·f`;
//! * **leakage power** as a function of element *area* and *temperature*
//!   (§IV.A: "We compute the leakage power of processing cores as a function
//!   of their area and the temperature").
//!
//! Since the original traces are not published, [`trace`] provides seeded
//! stochastic generators with per-benchmark character (duty cycle,
//! burstiness, imbalance); see DESIGN.md for why matching the trace
//! *statistics* preserves the policy behaviour the paper evaluates.
//!
//! # Example
//!
//! ```
//! use cmosaic_power::{PowerModel, trace::WorkloadKind};
//! use cmosaic_materials::units::Kelvin;
//!
//! let model = PowerModel::niagara();
//! let trace = WorkloadKind::WebServer.generate(8, 60, 42);
//! let demand = trace.utilization(10, 3); // t = 10 s, core 3
//! let p = model.core_power(demand, 0, Kelvin::from_celsius(60.0));
//! assert!(p > 0.0 && p < 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod dvfs;
pub mod model;
pub mod trace;

pub use allocator::{AllocatorPreset, BlockKind, BlockState, PowerAllocator};
pub use dvfs::{VfPoint, VfTable};
pub use model::{LeakageModel, PowerModel};
pub use trace::{WorkloadKind, WorkloadTrace};

use std::error::Error;
use std::fmt;

/// Errors produced by the power models.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A utilization value was outside `[0, 1]`.
    InvalidUtilization {
        /// The offending value.
        value: f64,
    },
    /// A DVFS level index was out of range.
    InvalidVfLevel {
        /// Requested level.
        level: usize,
        /// Number of available levels.
        available: usize,
    },
    /// Mismatched vector lengths in a bulk computation.
    LengthMismatch {
        /// Explanation.
        detail: String,
    },
    /// A block kind the model cannot price (e.g. the homogeneous
    /// [`PowerModel`] asked about a DRAM bank — use a [`PowerAllocator`]
    /// for heterogeneous tiers), or a [`BlockState`] whose kind disagrees
    /// with the floorplan element it is paired with.
    BlockMismatch {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidUtilization { value } => {
                write!(f, "utilization {value} outside [0, 1]")
            }
            PowerError::InvalidVfLevel { level, available } => {
                write!(f, "VF level {level} out of range (have {available})")
            }
            PowerError::LengthMismatch { detail } => write!(f, "length mismatch: {detail}"),
            PowerError::BlockMismatch { detail } => write!(f, "block mismatch: {detail}"),
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PowerError::InvalidUtilization { value: 1.5 }
            .to_string()
            .contains("1.5"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PowerError>();
    }
}
