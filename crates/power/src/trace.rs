//! Seeded synthetic workload traces.
//!
//! §IV.A: "we use workload traces collected from real applications running
//! on an UltraSPARC T1. We record the utilization percentage for each
//! hardware thread at every second for several minutes … including web
//! server, database management, and multimedia processing."
//!
//! The original traces are not published; these generators produce
//! per-core utilization ∈ [0, 1] at 1 s granularity with the
//! distinguishing statistics of each benchmark class:
//!
//! | Kind | Character |
//! |---|---|
//! | [`WorkloadKind::WebServer`] | moderate base load, bursty request storms, strong core imbalance |
//! | [`WorkloadKind::Database`] | high sustained load, periodic checkpoint spikes |
//! | [`WorkloadKind::Multimedia`] | periodic frame-rate pattern, paired cores |
//! | [`WorkloadKind::MaxUtilization`] | all cores pinned at 100 % (the "maximum utilization" bars of Fig. 6) |
//!
//! All generators are deterministic given `(cores, seconds, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The benchmark classes of §IV.A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Web-server style load (bursty, imbalanced).
    WebServer,
    /// Database management load (sustained, checkpoint spikes).
    Database,
    /// Multimedia processing load (periodic).
    Multimedia,
    /// Synthetic worst case: every core at 100 % all the time.
    MaxUtilization,
}

impl WorkloadKind {
    /// The three real-application classes (without the synthetic max).
    pub fn applications() -> [WorkloadKind; 3] {
        [
            WorkloadKind::WebServer,
            WorkloadKind::Database,
            WorkloadKind::Multimedia,
        ]
    }

    /// Generates a trace for `cores` cores over `seconds` one-second
    /// samples, deterministically from `seed`.
    pub fn generate(self, cores: usize, seconds: usize, seed: u64) -> WorkloadTrace {
        let mut rng = StdRng::seed_from_u64(seed ^ self.salt());
        let mut samples = vec![vec![0.0f64; cores]; seconds];
        match self {
            WorkloadKind::MaxUtilization => {
                for row in &mut samples {
                    row.iter_mut().for_each(|u| *u = 1.0);
                }
            }
            WorkloadKind::WebServer => {
                // Per-core affinity: front-end cores carry more load.
                let affinity: Vec<f64> = (0..cores)
                    .map(|c| 0.65 + 0.35 * ((c as f64 * 1.7).sin().abs()))
                    .collect();
                let mut burst_left = vec![0usize; cores];
                for (t, row) in samples.iter_mut().enumerate() {
                    let diurnal = 0.85 + 0.15 * (t as f64 / 97.0 * std::f64::consts::TAU).sin();
                    for (c, u) in row.iter_mut().enumerate() {
                        if burst_left[c] == 0 && rng.random::<f64>() < 0.06 {
                            burst_left[c] = 2 + (rng.random::<f64>() * 8.0) as usize;
                        }
                        let base = if burst_left[c] > 0 {
                            burst_left[c] -= 1;
                            0.85 + 0.15 * rng.random::<f64>()
                        } else {
                            0.30 + 0.15 * rng.random::<f64>()
                        };
                        *u = (base * affinity[c] * diurnal).clamp(0.0, 1.0);
                    }
                }
            }
            WorkloadKind::Database => {
                let mut drift = vec![0.72f64; cores];
                for (t, row) in samples.iter_mut().enumerate() {
                    // Checkpoint storm every ~60 s for ~5 s hits all cores.
                    let checkpoint = t % 60 < 5;
                    for (c, u) in row.iter_mut().enumerate() {
                        // Mean-reverting drift: sustained DB load stays
                        // balanced across cores (unlike the web server's
                        // affinity-skewed front-ends), for any RNG stream.
                        drift[c] = (drift[c]
                            + 0.08 * (0.72 - drift[c])
                            + (rng.random::<f64>() - 0.5) * 0.06)
                            .clamp(0.55, 0.9);
                        *u = if checkpoint {
                            0.95 + 0.05 * rng.random::<f64>()
                        } else {
                            drift[c] + 0.05 * rng.random::<f64>()
                        }
                        .clamp(0.0, 1.0);
                    }
                }
            }
            WorkloadKind::Multimedia => {
                for (t, row) in samples.iter_mut().enumerate() {
                    // Frame pipeline: even cores decode, odd cores render a
                    // half-period later; ~24 s GOP period.
                    for (c, u) in row.iter_mut().enumerate() {
                        let phase = if c % 2 == 0 {
                            0.0
                        } else {
                            std::f64::consts::PI
                        };
                        let wave = (t as f64 / 24.0 * std::f64::consts::TAU + phase).sin() * 0.22;
                        let jitter = (rng.random::<f64>() - 0.5) * 0.08;
                        *u = (0.55 + wave + jitter).clamp(0.05, 1.0);
                    }
                }
            }
        }
        WorkloadTrace {
            kind: self,
            samples,
        }
    }

    fn salt(self) -> u64 {
        match self {
            WorkloadKind::WebServer => 0x5eb_5e12,
            WorkloadKind::Database => 0xdb_ba5e,
            WorkloadKind::Multimedia => 0x3d_f11,
            WorkloadKind::MaxUtilization => 0xffff,
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadKind::WebServer => "web-server",
            WorkloadKind::Database => "database",
            WorkloadKind::Multimedia => "multimedia",
            WorkloadKind::MaxUtilization => "max-utilization",
        };
        f.write_str(s)
    }
}

/// A per-core utilization trace at 1 s granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    kind: WorkloadKind,
    /// `samples[t][core]` ∈ [0, 1].
    samples: Vec<Vec<f64>>,
}

impl WorkloadTrace {
    /// Builds a trace from raw per-second samples (`samples[t][core]`),
    /// tagged with the benchmark class it represents — the entry point for
    /// replaying recorded utilization traces instead of the synthetic
    /// generators.
    ///
    /// # Errors
    ///
    /// * [`PowerError::LengthMismatch`](crate::PowerError::LengthMismatch)
    ///   — empty trace, or rows of unequal core counts.
    /// * [`PowerError::InvalidUtilization`](crate::PowerError::InvalidUtilization)
    ///   — a sample outside `[0, 1]`.
    pub fn from_samples(
        kind: WorkloadKind,
        samples: Vec<Vec<f64>>,
    ) -> Result<Self, crate::PowerError> {
        let cores = samples.first().map_or(0, Vec::len);
        if cores == 0 {
            return Err(crate::PowerError::LengthMismatch {
                detail: "a workload trace needs at least one second and one core".into(),
            });
        }
        for (t, row) in samples.iter().enumerate() {
            if row.len() != cores {
                return Err(crate::PowerError::LengthMismatch {
                    detail: format!("second {t} has {} cores, second 0 has {cores}", row.len()),
                });
            }
            for &u in row {
                if !(0.0..=1.0).contains(&u) {
                    return Err(crate::PowerError::InvalidUtilization { value: u });
                }
            }
        }
        Ok(WorkloadTrace { kind, samples })
    }

    /// The benchmark class this trace was generated from.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Trace length in seconds.
    pub fn seconds(&self) -> usize {
        self.samples.len()
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// Utilization of `core` at second `t` (wraps around at the trace end,
    /// so simulations may run longer than the recording).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `core` is out of range.
    pub fn utilization(&self, t: usize, core: usize) -> f64 {
        let row = &self.samples[t % self.samples.len()];
        row[core]
    }

    /// All per-core utilizations at second `t` (wrapping).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn row(&self, t: usize) -> &[f64] {
        &self.samples[t % self.samples.len()]
    }

    /// Mean utilization over all cores and samples.
    pub fn average_utilization(&self) -> f64 {
        let n = (self.seconds() * self.cores()) as f64;
        if n == 0.0 {
            return 0.0;
        }
        self.samples.iter().flatten().sum::<f64>() / n
    }

    /// Largest single-core sample in the trace.
    pub fn peak_utilization(&self) -> f64 {
        self.samples.iter().flatten().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Summary statistics of the trace (the quantities §IV.A's "average
    /// utilization" and "maximum utilization" workload labels refer to).
    pub fn statistics(&self) -> TraceStatistics {
        let mean = self.average_utilization();
        let n = (self.seconds() * self.cores()) as f64;
        let variance = if n <= 1.0 {
            0.0
        } else {
            self.samples
                .iter()
                .flatten()
                .map(|u| (u - mean) * (u - mean))
                .sum::<f64>()
                / n
        };
        // Per-core means expose the imbalance the load balancer removes.
        let mut core_means = vec![0.0f64; self.cores()];
        for row in &self.samples {
            for (c, &u) in row.iter().enumerate() {
                core_means[c] += u / self.seconds().max(1) as f64;
            }
        }
        let imbalance = core_means.iter().copied().fold(0.0f64, f64::max)
            - core_means.iter().copied().fold(1.0f64, f64::min);
        TraceStatistics {
            mean,
            std_dev: variance.sqrt(),
            peak: self.peak_utilization(),
            core_imbalance: imbalance.max(0.0),
        }
    }
}

/// Aggregate statistics of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStatistics {
    /// Mean utilization over cores and time.
    pub mean: f64,
    /// Standard deviation of the samples (burstiness).
    pub std_dev: f64,
    /// Largest single sample.
    pub peak: f64,
    /// Spread between the busiest and laziest core's time-mean.
    pub core_imbalance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        for kind in [
            WorkloadKind::WebServer,
            WorkloadKind::Database,
            WorkloadKind::Multimedia,
        ] {
            let a = kind.generate(8, 120, 7);
            let b = kind.generate(8, 120, 7);
            assert_eq!(a, b, "{kind} must be deterministic");
            let c = kind.generate(8, 120, 8);
            assert_ne!(a, c, "{kind} must vary with the seed");
        }
    }

    #[test]
    fn utilizations_are_in_unit_interval() {
        for kind in WorkloadKind::applications() {
            let tr = kind.generate(8, 300, 3);
            for t in 0..tr.seconds() {
                for c in 0..tr.cores() {
                    let u = tr.utilization(t, c);
                    assert!((0.0..=1.0).contains(&u), "{kind} u={u}");
                }
            }
        }
    }

    #[test]
    fn benchmark_classes_have_distinct_statistics() {
        let web = WorkloadKind::WebServer.generate(8, 600, 1);
        let db = WorkloadKind::Database.generate(8, 600, 1);
        let mm = WorkloadKind::Multimedia.generate(8, 600, 1);
        // Database is the heaviest sustained load.
        assert!(db.average_utilization() > web.average_utilization());
        assert!(db.average_utilization() > mm.average_utilization());
        // Web server is bursty: hits near-peak samples.
        assert!(web.peak_utilization() > 0.8);
        // All are realistic, i.e. nobody is pinned or idle on average.
        for tr in [&web, &db, &mm] {
            let avg = tr.average_utilization();
            assert!(avg > 0.2 && avg < 0.95, "{} avg={avg}", tr.kind());
        }
    }

    #[test]
    fn max_utilization_is_pinned() {
        let tr = WorkloadKind::MaxUtilization.generate(8, 10, 0);
        assert_eq!(tr.average_utilization(), 1.0);
        assert_eq!(tr.peak_utilization(), 1.0);
    }

    #[test]
    fn custom_traces_validate_shape_and_range() {
        let tr = WorkloadTrace::from_samples(
            WorkloadKind::Database,
            vec![vec![0.5, 0.25], vec![1.0, 0.0]],
        )
        .expect("valid trace");
        assert_eq!(tr.cores(), 2);
        assert_eq!(tr.seconds(), 2);
        assert_eq!(tr.kind(), WorkloadKind::Database);
        assert_eq!(tr.utilization(0, 1), 0.25);
        // Empty, ragged, and out-of-range traces are rejected.
        assert!(WorkloadTrace::from_samples(WorkloadKind::Database, vec![]).is_err());
        assert!(WorkloadTrace::from_samples(
            WorkloadKind::Database,
            vec![vec![0.5, 0.5], vec![0.5]]
        )
        .is_err());
        assert!(WorkloadTrace::from_samples(WorkloadKind::Database, vec![vec![1.5]]).is_err());
    }

    #[test]
    fn trace_wraps_around() {
        let tr = WorkloadKind::Database.generate(4, 50, 2);
        assert_eq!(tr.utilization(50, 0), tr.utilization(0, 0));
        assert_eq!(tr.row(103), tr.row(3));
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkloadKind::WebServer.to_string(), "web-server");
        assert_eq!(WorkloadKind::MaxUtilization.to_string(), "max-utilization");
    }

    #[test]
    fn statistics_characterise_the_benchmark_classes() {
        let web = WorkloadKind::WebServer.generate(8, 400, 5).statistics();
        let db = WorkloadKind::Database.generate(8, 400, 5).statistics();
        let mx = WorkloadKind::MaxUtilization.generate(8, 10, 5).statistics();
        // Web server is the bursty, imbalanced one.
        assert!(
            web.std_dev > db.std_dev,
            "web {} !> db {}",
            web.std_dev,
            db.std_dev
        );
        assert!(web.core_imbalance > db.core_imbalance);
        // Max-utilization is flat at 1.
        assert_eq!(mx.mean, 1.0);
        assert_eq!(mx.std_dev, 0.0);
        assert_eq!(mx.core_imbalance, 0.0);
        // Sanity on bounds.
        for s in [web, db] {
            assert!(s.peak <= 1.0 && s.mean > 0.0 && s.mean < 1.0);
        }
    }
}
