//! The per-block power actuation layer.
//!
//! The homogeneous [`PowerModel`] prices Niagara cores, L2 banks and the
//! crossbar; heterogeneous 3D integration adds block kinds it cannot
//! express — stacked DRAM (Cherian et al., arXiv:1109.0708) and
//! fixed-function accelerators (mixed core/accelerator budgets in the
//! style of lumos's `MPSoC` model). A [`PowerAllocator`] maps a
//! [`BlockState`] (demand, DVFS level, kind) to watts for *every* block
//! kind, with temperature-dependent leakage wired through each of them and
//! the floorplan's per-element process node scaling the leakage density
//! (a 45 nm DRAM die over a 90 nm logic die leaks at a different density).
//!
//! The simulator re-evaluates the per-block powers from block state every
//! control epoch through [`PowerAllocator::tier_powers_into`] — an
//! allocation-free bulk path over reused buffers, so closed-loop actuation
//! (DVFS, task migration) costs nothing on the warm path.

use crate::model::PowerModel;
use crate::PowerError;
use cmosaic_floorplan::plan::{Element, ElementKind, Floorplan, DEFAULT_TECH_NM};
use cmosaic_materials::units::Kelvin;

/// The architectural role of a powered block — the power-side mirror of
/// [`ElementKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// A processing core (DVFS-scaled, per-core demand).
    Core,
    /// A shared L2 SRAM bank.
    L2Cache,
    /// A stacked DRAM bank (refresh + activate power).
    Memory,
    /// A throughput accelerator (DVFS-scaled like a core, its own budget).
    Accelerator,
    /// The crossbar / on-chip interconnect.
    Crossbar,
    /// Anything else (I/O, controllers, pad ring…).
    Other,
}

impl From<ElementKind> for BlockKind {
    fn from(kind: ElementKind) -> Self {
        match kind {
            ElementKind::Core => BlockKind::Core,
            ElementKind::L2Cache => BlockKind::L2Cache,
            ElementKind::Memory => BlockKind::Memory,
            ElementKind::Accelerator => BlockKind::Accelerator,
            ElementKind::Crossbar => BlockKind::Crossbar,
            ElementKind::Other => BlockKind::Other,
        }
    }
}

impl std::fmt::Display for BlockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BlockKind::Core => "core",
            BlockKind::L2Cache => "l2-cache",
            BlockKind::Memory => "memory",
            BlockKind::Accelerator => "accelerator",
            BlockKind::Crossbar => "crossbar",
            BlockKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Per-block actuation state for one control epoch: what the policy layer
/// decided this block should do. The power map is re-derived from these
/// every epoch, so DVFS and task migration act on power with one interval
/// of latency — exactly the paper's control loop, generalized beyond
/// cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockState {
    /// Architectural role (must match the floorplan element it is paired
    /// with in bulk calls).
    pub kind: BlockKind,
    /// Offered/assigned load as a fraction of nominal throughput,
    /// clamped to `[0, 1]` when priced.
    pub demand: f64,
    /// DVFS level (0 = nominal). Only cores and accelerators are
    /// V/f-scaled; other kinds ignore it.
    pub vf_level: usize,
}

impl BlockState {
    /// An idle block of the given kind at nominal V/f.
    pub fn idle(kind: BlockKind) -> Self {
        BlockState {
            kind,
            demand: 0.0,
            vf_level: 0,
        }
    }

    /// A block of `kind` serving `demand` at nominal V/f.
    pub fn loaded(kind: BlockKind, demand: f64) -> Self {
        BlockState {
            kind,
            demand,
            vf_level: 0,
        }
    }
}

/// Power parameters of a DRAM bank stack (W/m² densities so banks of any
/// area price consistently).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryParams {
    /// Idle (refresh + standby) power density, W/m².
    pub idle_density: f64,
    /// Additional activate/precharge density at full utilization, W/m².
    pub active_density: f64,
    /// Fraction of the logic leakage density that applies to the DRAM
    /// arrays (access transistors are leakage-optimised).
    pub leakage_scale: f64,
}

/// Power parameters of a throughput accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorParams {
    /// Idle (clock-gated) power density, W/m².
    pub idle_density: f64,
    /// Power density at full throughput, W/m².
    pub active_density: f64,
    /// Fraction of the logic leakage density that applies to the
    /// accelerator silicon.
    pub leakage_scale: f64,
}

/// Identifies one of the calibrated [`PowerAllocator`] presets — the value
/// a `ScenarioSpec`/`Study`/`DesignAxis` carries for its allocator axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocatorPreset {
    /// The homogeneous Niagara calibration with mid-range heterogeneous
    /// budgets (the default; identical to [`PowerModel::niagara`] on
    /// core/cache tiers).
    #[default]
    Niagara,
    /// Low-power stacked DRAM (memory-on-logic integration).
    MemoryOnLogic,
    /// Accelerator-heavy budget: dark-silicon idle, high peak density.
    MixedAccelerator,
}

impl std::fmt::Display for AllocatorPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AllocatorPreset::Niagara => "niagara",
            AllocatorPreset::MemoryOnLogic => "memory-on-logic",
            AllocatorPreset::MixedAccelerator => "mixed-accelerator",
        };
        f.write_str(s)
    }
}

impl AllocatorPreset {
    /// Builds the allocator this preset names.
    pub fn build(self) -> PowerAllocator {
        match self {
            AllocatorPreset::Niagara => PowerAllocator::niagara(),
            AllocatorPreset::MemoryOnLogic => PowerAllocator::memory_on_logic(),
            AllocatorPreset::MixedAccelerator => PowerAllocator::mixed_accelerator(),
        }
    }

    /// All presets, for axis enumeration.
    pub fn all() -> [AllocatorPreset; 3] {
        [
            AllocatorPreset::Niagara,
            AllocatorPreset::MemoryOnLogic,
            AllocatorPreset::MixedAccelerator,
        ]
    }
}

/// Maps block states to per-block watts, every epoch.
///
/// Wraps the calibrated [`PowerModel`] for the homogeneous kinds and adds
/// DRAM and accelerator budgets, plus per-element process-node leakage
/// scaling: leakage density grows as the node shrinks (`90/tech_nm`), so a
/// 45 nm DRAM die or a 65 nm accelerator die contributes its own leakage
/// character to the electrothermal loop.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerAllocator {
    /// The core/L2/crossbar/other calibration.
    pub model: PowerModel,
    /// DRAM bank parameters.
    pub memory: MemoryParams,
    /// Accelerator parameters.
    pub accelerator: AcceleratorParams,
}

impl Default for PowerAllocator {
    fn default() -> Self {
        PowerAllocator::niagara()
    }
}

impl PowerAllocator {
    /// The default allocator: [`PowerModel::niagara`] for the homogeneous
    /// kinds, mid-range DRAM and accelerator budgets.
    pub fn niagara() -> Self {
        PowerAllocator {
            model: PowerModel::niagara(),
            memory: MemoryParams {
                idle_density: 5.0e3,   // ~0.10 W refresh per 19 mm² bank
                active_density: 2.5e4, // ~0.48 W activate at full load
                leakage_scale: 0.05,
            },
            accelerator: AcceleratorParams {
                idle_density: 2.0e4,   // ~0.4 W clock-gated per 20 mm²
                active_density: 2.0e5, // ~4 W at full throughput
                leakage_scale: 0.6,
            },
        }
    }

    /// Low-power stacked DRAM: mobile-class refresh/activate densities and
    /// leakage-optimised arrays.
    pub fn memory_on_logic() -> Self {
        PowerAllocator {
            memory: MemoryParams {
                idle_density: 3.0e3,
                active_density: 1.5e4,
                leakage_scale: 0.03,
            },
            ..PowerAllocator::niagara()
        }
    }

    /// Accelerator-heavy budget: dark-silicon idle (power-gated engines)
    /// with a high peak density when streaming.
    pub fn mixed_accelerator() -> Self {
        PowerAllocator {
            accelerator: AcceleratorParams {
                idle_density: 1.0e4,
                active_density: 3.0e5,
                leakage_scale: 0.8,
            },
            ..PowerAllocator::niagara()
        }
    }

    /// The DVFS table shared with the policies.
    pub fn vf(&self) -> &crate::dvfs::VfTable {
        &self.model.vf
    }

    /// Leakage density multiplier of a process node: 1 at the 90 nm
    /// Niagara node, growing as the node shrinks.
    fn tech_factor(tech_nm: u32) -> f64 {
        f64::from(DEFAULT_TECH_NM) / f64::from(tech_nm.max(1))
    }

    /// Power (W) of one block in `state`, occupying `area` m² of a
    /// `tech_nm` die, at junction temperature `t`.
    ///
    /// Core and L2/crossbar/other blocks at the 90 nm node price exactly
    /// as the wrapped [`PowerModel`]; finer nodes add a leakage surcharge
    /// proportional to the node's density multiplier.
    pub fn block_power(&self, state: &BlockState, area: f64, tech_nm: u32, t: Kelvin) -> f64 {
        let demand = state.demand.clamp(0.0, 1.0);
        let leak = &self.model.leakage;
        let excess = Self::tech_factor(tech_nm) - 1.0;
        match state.kind {
            BlockKind::Core => {
                let base = self.model.core_power(demand, state.vf_level, t);
                base + excess * leak.power(area, t, 1.0)
            }
            BlockKind::L2Cache => {
                let base = self.model.l2_power(demand, t);
                base + excess * leak.power(area * self.model.uncore_leakage_scale, t, 1.0)
            }
            BlockKind::Crossbar => {
                let base = self.model.xbar_power(demand, area, t);
                base + excess * leak.power(area * self.model.uncore_leakage_scale, t, 1.0)
            }
            BlockKind::Other => {
                let base = self.model.other_power(area, t);
                base + excess * leak.power(area * self.model.uncore_leakage_scale, t, 1.0)
            }
            BlockKind::Memory => {
                let m = &self.memory;
                m.idle_density * area
                    + m.active_density * area * demand
                    + leak.power(area * m.leakage_scale * Self::tech_factor(tech_nm), t, 1.0)
            }
            BlockKind::Accelerator => {
                let a = &self.accelerator;
                let vf = &self.model.vf;
                let occ = vf.occupancy(demand, state.vf_level);
                let scale = vf.dynamic_scale(state.vf_level);
                let v_ratio = {
                    let lvl = state.vf_level.min(vf.slowest());
                    vf.point(lvl).expect("clamped level").voltage
                        / vf.point(0).expect("nominal").voltage
                };
                let dynamic =
                    (a.idle_density + (a.active_density - a.idle_density) * occ) * area * scale;
                dynamic
                    + leak.power(
                        area * a.leakage_scale * Self::tech_factor(tech_nm),
                        t,
                        v_ratio,
                    )
            }
        }
    }

    /// Validates one (element, state) pairing.
    fn check_pair(index: usize, e: &Element, state: &BlockState) -> Result<(), PowerError> {
        let expected = BlockKind::from(e.kind());
        if state.kind != expected {
            return Err(PowerError::BlockMismatch {
                detail: format!(
                    "element {index} `{}` is a {expected} block but its state says {}",
                    e.name(),
                    state.kind
                ),
            });
        }
        Ok(())
    }

    /// Per-element powers for one tier, into a reused buffer —
    /// allocation-free once `out` has warmed up. `states` and `temps` hold
    /// one entry per element of the plan, in element order.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::LengthMismatch`] on count mismatches and
    /// [`PowerError::BlockMismatch`] when a state's kind disagrees with
    /// its element.
    pub fn tier_powers_into(
        &self,
        plan: &Floorplan,
        states: &[BlockState],
        temps: &[Kelvin],
        out: &mut Vec<f64>,
    ) -> Result<(), PowerError> {
        let n = plan.elements().len();
        if states.len() != n || temps.len() != n {
            return Err(PowerError::LengthMismatch {
                detail: format!(
                    "{} states / {} temps for {n} elements of `{}`",
                    states.len(),
                    temps.len(),
                    plan.name()
                ),
            });
        }
        out.clear();
        for (i, (e, state)) in plan.elements().iter().zip(states).enumerate() {
            Self::check_pair(i, e, state)?;
            out.push(self.block_power(state, e.area(), e.tech_nm(), temps[i]));
        }
        Ok(())
    }

    /// Allocating convenience wrapper over
    /// [`PowerAllocator::tier_powers_into`].
    ///
    /// # Errors
    ///
    /// See [`PowerAllocator::tier_powers_into`].
    pub fn tier_powers(
        &self,
        plan: &Floorplan,
        states: &[BlockState],
        temps: &[Kelvin],
    ) -> Result<Vec<f64>, PowerError> {
        let mut out = Vec::with_capacity(plan.elements().len());
        self.tier_powers_into(plan, states, temps, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_floorplan::niagara;

    fn t60() -> Kelvin {
        Kelvin::from_celsius(60.0)
    }

    fn states_for(plan: &Floorplan, demand: f64) -> Vec<BlockState> {
        plan.elements()
            .iter()
            .map(|e| BlockState::loaded(BlockKind::from(e.kind()), demand))
            .collect()
    }

    #[test]
    fn niagara_preset_matches_the_homogeneous_model_on_niagara_tiers() {
        let alloc = PowerAllocator::niagara();
        let model = PowerModel::niagara();
        let cores = niagara::core_tier().unwrap();
        let temps = vec![t60(); cores.elements().len()];
        // Uncore blocks see the *mean* core demand, computed exactly as
        // the homogeneous model computes it.
        let demands = [0.7; 8];
        let mean = demands.iter().sum::<f64>() / demands.len() as f64;
        let states: Vec<BlockState> = cores
            .elements()
            .iter()
            .map(|e| match BlockKind::from(e.kind()) {
                BlockKind::Core => BlockState::loaded(BlockKind::Core, 0.7),
                k => BlockState::loaded(k, mean),
            })
            .collect();
        let via_alloc = alloc.tier_powers(&cores, &states, &temps).unwrap();
        let via_model = model
            .tier_powers(&cores, &[0.7; 8], &[0; 8], &temps)
            .unwrap();
        // 90 nm elements carry no tech surcharge, so the two paths agree
        // bit for bit on the homogeneous tiers.
        assert_eq!(via_alloc, via_model);
    }

    #[test]
    fn every_block_kind_is_temperature_dependent() {
        let alloc = PowerAllocator::niagara();
        let cool = Kelvin::from_celsius(45.0);
        let hot = Kelvin::from_celsius(95.0);
        for kind in [
            BlockKind::Core,
            BlockKind::L2Cache,
            BlockKind::Memory,
            BlockKind::Accelerator,
            BlockKind::Crossbar,
            BlockKind::Other,
        ] {
            let s = BlockState::loaded(kind, 0.5);
            let p_cool = alloc.block_power(&s, 15e-6, 90, cool);
            let p_hot = alloc.block_power(&s, 15e-6, 90, hot);
            assert!(
                p_hot > p_cool,
                "{kind} power must rise with temperature ({p_cool} vs {p_hot})"
            );
        }
    }

    #[test]
    fn finer_nodes_leak_more() {
        let alloc = PowerAllocator::niagara();
        let s = BlockState::loaded(BlockKind::Memory, 0.5);
        let p90 = alloc.block_power(&s, 19e-6, 90, t60());
        let p45 = alloc.block_power(&s, 19e-6, 45, t60());
        assert!(p45 > p90, "45 nm must leak more than 90 nm");
    }

    #[test]
    fn presets_price_heterogeneous_tiers_differently() {
        let mem_plan = niagara::memory_tier().unwrap();
        let acc_plan = niagara::accelerator_tier().unwrap();
        let temps_mem = vec![t60(); mem_plan.elements().len()];
        let temps_acc = vec![t60(); acc_plan.elements().len()];
        let busy_mem = states_for(&mem_plan, 0.8);
        let busy_acc = states_for(&acc_plan, 0.8);

        let base = PowerAllocator::niagara();
        let lp = PowerAllocator::memory_on_logic();
        let hx = PowerAllocator::mixed_accelerator();

        let sum = |v: Vec<f64>| v.iter().sum::<f64>();
        let mem_base = sum(base.tier_powers(&mem_plan, &busy_mem, &temps_mem).unwrap());
        let mem_lp = sum(lp.tier_powers(&mem_plan, &busy_mem, &temps_mem).unwrap());
        assert!(mem_lp < mem_base, "low-power DRAM must draw less");

        let acc_base = sum(base.tier_powers(&acc_plan, &busy_acc, &temps_acc).unwrap());
        let acc_hx = sum(hx.tier_powers(&acc_plan, &busy_acc, &temps_acc).unwrap());
        assert!(
            acc_hx > acc_base,
            "the accelerator-heavy budget peaks higher"
        );

        // Memory tier stays a fraction of a busy core tier's draw.
        assert!(
            mem_base > 0.5 && mem_base < 15.0,
            "memory tier = {mem_base}"
        );
    }

    #[test]
    fn dvfs_scales_accelerators() {
        let alloc = PowerAllocator::niagara();
        let nominal = BlockState {
            kind: BlockKind::Accelerator,
            demand: 0.5,
            vf_level: 0,
        };
        let slow = BlockState {
            vf_level: 3,
            ..nominal
        };
        let p0 = alloc.block_power(&nominal, 20e-6, 65, t60());
        let p3 = alloc.block_power(&slow, 20e-6, 65, t60());
        assert!(p3 < p0, "DVFS must reduce accelerator power");
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let alloc = PowerAllocator::niagara();
        let cores = niagara::core_tier().unwrap();
        let temps = vec![t60(); cores.elements().len()];
        let mut states = states_for(&cores, 0.5);
        states[0].kind = BlockKind::Memory;
        let err = alloc.tier_powers(&cores, &states, &temps);
        assert!(matches!(err, Err(PowerError::BlockMismatch { .. })));

        let short = alloc.tier_powers(&cores, &states[..2], &temps);
        assert!(matches!(short, Err(PowerError::LengthMismatch { .. })));
    }
}
