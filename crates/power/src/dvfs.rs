//! Voltage/frequency scaling.
//!
//! §IV.A uses temperature-triggered DVFS (scale down above 85 °C, back up
//! below 82 °C) and the fuzzy controller uses utilization-guided DVFS. The
//! T1 itself did not ship with DVFS; the paper (like its ref. \[8]) assumes
//! a small table of V/f operating points below the nominal 1.2 V / 1.2 GHz.

use crate::PowerError;

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfPoint {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Clock frequency in Hz.
    pub frequency: f64,
}

/// An ordered table of operating points, fastest (nominal) first.
///
/// Level 0 is nominal; higher indices are slower, lower-power points.
///
/// ```
/// use cmosaic_power::VfTable;
/// let t = VfTable::niagara();
/// assert_eq!(t.len(), 4);
/// assert!(t.dynamic_scale(3) < t.dynamic_scale(0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfTable {
    points: Vec<VfPoint>,
}

impl VfTable {
    /// The four-point table used for the Niagara-based MPSoCs:
    /// 1.2 V/1.2 GHz down to 0.9 V/0.6 GHz.
    pub fn niagara() -> Self {
        VfTable {
            points: vec![
                VfPoint {
                    voltage: 1.2,
                    frequency: 1.2e9,
                },
                VfPoint {
                    voltage: 1.1,
                    frequency: 1.0e9,
                },
                VfPoint {
                    voltage: 1.0,
                    frequency: 0.8e9,
                },
                VfPoint {
                    voltage: 0.9,
                    frequency: 0.6e9,
                },
            ],
        }
    }

    /// Builds a table from points (must be non-empty, sorted fastest
    /// first).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::LengthMismatch`] when empty or unsorted.
    pub fn new(points: Vec<VfPoint>) -> Result<Self, PowerError> {
        if points.is_empty() {
            return Err(PowerError::LengthMismatch {
                detail: "VF table must not be empty".into(),
            });
        }
        for w in points.windows(2) {
            if w[1].frequency > w[0].frequency || w[1].voltage > w[0].voltage {
                return Err(PowerError::LengthMismatch {
                    detail: "VF table must be sorted fastest-first".into(),
                });
            }
        }
        Ok(VfTable { points })
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The operating point at `level`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidVfLevel`] if out of range.
    pub fn point(&self, level: usize) -> Result<VfPoint, PowerError> {
        self.points
            .get(level)
            .copied()
            .ok_or(PowerError::InvalidVfLevel {
                level,
                available: self.points.len(),
            })
    }

    /// Slowest (lowest-power) level index.
    pub fn slowest(&self) -> usize {
        self.points.len() - 1
    }

    /// Relative speed `f/f_nom ∈ (0, 1]` of a level (clamped to the table).
    pub fn speed(&self, level: usize) -> f64 {
        let level = level.min(self.slowest());
        self.points[level].frequency / self.points[0].frequency
    }

    /// Dynamic-power scale factor `(V/V_nom)²·(f/f_nom)` of a level
    /// (clamped to the table).
    pub fn dynamic_scale(&self, level: usize) -> f64 {
        let level = level.min(self.slowest());
        let p = self.points[level];
        let nom = self.points[0];
        (p.voltage / nom.voltage).powi(2) * (p.frequency / nom.frequency)
    }

    /// CPU occupancy when serving a demand `d` (fraction of *nominal*
    /// throughput) at `level`: `min(1, d/speed)`.
    pub fn occupancy(&self, demand: f64, level: usize) -> f64 {
        (demand / self.speed(level)).min(1.0)
    }

    /// Fraction of offered work that cannot be served this interval at
    /// `level` — the per-interval performance-degradation contribution
    /// (`max(0, d − speed)/max(d, ε)`).
    pub fn deferred_fraction(&self, demand: f64, level: usize) -> f64 {
        if demand <= 0.0 {
            return 0.0;
        }
        ((demand - self.speed(level)).max(0.0)) / demand
    }

    /// The slowest (most energy-efficient) level that still serves
    /// `demand` with `margin` headroom: the largest level whose speed is
    /// at least `demand + margin`, or level 0 when even nominal speed is
    /// too slow. This is the single source of truth for utilization-guided
    /// DVFS across the policies.
    pub fn level_for_demand(&self, demand: f64, margin: f64) -> usize {
        let need = demand + margin;
        (0..self.points.len())
            .rev()
            .find(|&lvl| self.speed(lvl) >= need)
            .unwrap_or(0)
    }
}

impl Default for VfTable {
    fn default() -> Self {
        VfTable::niagara()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn niagara_table_shape() {
        let t = VfTable::niagara();
        assert_eq!(t.len(), 4);
        assert_eq!(t.slowest(), 3);
        assert!((t.speed(0) - 1.0).abs() < 1e-12);
        assert!((t.speed(3) - 0.5).abs() < 1e-12);
        assert!((t.dynamic_scale(0) - 1.0).abs() < 1e-12);
        // 0.9²/1.2² · 0.6/1.2 = 0.5625 · 0.5 = 0.28125.
        assert!((t.dynamic_scale(3) - 0.28125).abs() < 1e-9);
    }

    #[test]
    fn occupancy_saturates() {
        let t = VfTable::niagara();
        assert!((t.occupancy(0.4, 0) - 0.4).abs() < 1e-12);
        // Demand 0.8 at half speed saturates the core.
        assert!((t.occupancy(0.8, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deferred_fraction_measures_slowdown() {
        let t = VfTable::niagara();
        assert_eq!(t.deferred_fraction(0.3, 0), 0.0);
        // Demand 0.8 at speed 0.5: 0.3/0.8 deferred.
        assert!((t.deferred_fraction(0.8, 3) - 0.375).abs() < 1e-12);
        assert_eq!(t.deferred_fraction(0.0, 3), 0.0);
    }

    #[test]
    fn out_of_range_levels() {
        let t = VfTable::niagara();
        assert!(t.point(4).is_err());
        // speed()/dynamic_scale() clamp instead of panicking.
        assert_eq!(t.speed(99), t.speed(3));
    }

    #[test]
    fn level_for_demand_picks_the_slowest_sufficient_point() {
        let t = VfTable::niagara();
        // Speeds are 1.0, 5/6, 2/3, 0.5.
        assert_eq!(t.level_for_demand(0.1, 0.05), 3);
        assert_eq!(t.level_for_demand(0.6, 0.05), 2);
        assert_eq!(t.level_for_demand(0.75, 0.05), 1);
        assert_eq!(t.level_for_demand(0.9, 0.05), 0);
        // Overload still lands on nominal.
        assert_eq!(t.level_for_demand(1.5, 0.05), 0);
    }

    #[test]
    fn unsorted_tables_rejected() {
        let bad = VfTable::new(vec![
            VfPoint {
                voltage: 1.0,
                frequency: 1.0e9,
            },
            VfPoint {
                voltage: 1.2,
                frequency: 1.2e9,
            },
        ]);
        assert!(bad.is_err());
        assert!(VfTable::new(vec![]).is_err());
    }
}
