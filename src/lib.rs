//! Umbrella package for the `cmosaic` reproduction workspace.
//!
//! This crate exists so that the repository root can host runnable
//! [examples](https://doc.rust-lang.org/cargo/reference/cargo-targets.html#examples)
//! and cross-crate integration tests. The actual library lives in the
//! workspace crates; start from [`cmosaic`] which re-exports the whole
//! public surface.

pub use cmosaic;
pub use cmosaic_floorplan as floorplan;
pub use cmosaic_hydraulics as hydraulics;
pub use cmosaic_materials as materials;
pub use cmosaic_power as power;
pub use cmosaic_sparse as sparse;
pub use cmosaic_thermal as thermal;
pub use cmosaic_twophase as twophase;
