//! Cross-crate integration of the modelling pipeline *without* the policy
//! layer: floorplan → power model → grid power maps → thermal model, with
//! physical invariants checked end to end.

use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::{niagara, GridSpec};
use cmosaic_materials::units::{Kelvin, VolumetricFlow};
use cmosaic_power::PowerModel;
use cmosaic_thermal::{ThermalModel, ThermalParams};

/// Niagara power maps for a 2-tier stack at the given uniform demand.
fn niagara_maps(grid: GridSpec, demand: f64) -> (Vec<Vec<f64>>, f64) {
    let power = PowerModel::niagara();
    let cores = niagara::core_tier().expect("floorplan");
    let caches = niagara::cache_tier().expect("floorplan");
    let t = Kelvin::from_celsius(60.0);
    let demands = vec![demand; 8];
    let vf = vec![0usize; 8];
    let p_core = power
        .tier_powers(&cores, &demands, &vf, &vec![t; cores.elements().len()])
        .expect("valid");
    let p_cache = power
        .tier_powers(&caches, &demands, &vf, &vec![t; caches.elements().len()])
        .expect("valid");
    let total = p_core.iter().sum::<f64>() + p_cache.iter().sum::<f64>();
    let maps = vec![
        grid.power_map(&cores, &p_core, niagara::DIE_WIDTH, niagara::DIE_HEIGHT)
            .expect("mapped"),
        grid.power_map(&caches, &p_cache, niagara::DIE_WIDTH, niagara::DIE_HEIGHT)
            .expect("mapped"),
    ];
    (maps, total)
}

#[test]
fn fluid_removes_exactly_the_niagara_chip_power() {
    let grid = GridSpec::new(10, 10).expect("static dims");
    let (maps, total) = niagara_maps(grid, 0.8);
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let mut model = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("builds");
    model
        .set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
        .expect("valid flow");
    model.steady_state(&maps).expect("solves");
    let removed = model.fluid_heat_removed();
    assert!(
        (removed - total).abs() < 0.01 * total,
        "energy conservation: fluid removes {removed} W of {total} W"
    );
}

#[test]
fn cores_are_hotter_than_caches_in_the_junction_map() {
    // The core tier carries ~4x the cache tier's power density; its
    // junction layer must be hotter on average.
    let grid = GridSpec::new(12, 12).expect("static dims");
    let (maps, _) = niagara_maps(grid, 1.0);
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let mut model = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("builds");
    model
        .set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    let field = model.steady_state(&maps).expect("solves");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(field.tier(0)) > mean(field.tier(1)),
        "core tier must run hotter than the cache tier"
    );
}

#[test]
fn per_core_sensor_readings_follow_their_demands() {
    // Load only cores 0-3 (bottom row of the core tier): their sensors
    // must read hotter than cores 4-7.
    let grid = GridSpec::new(12, 12).expect("static dims");
    let power = PowerModel::niagara();
    let cores = niagara::core_tier().expect("floorplan");
    let caches = niagara::cache_tier().expect("floorplan");
    let t = Kelvin::from_celsius(55.0);
    let demands = [1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
    let vf = [0usize; 8];
    let p_core = power
        .tier_powers(&cores, &demands, &vf, &vec![t; cores.elements().len()])
        .expect("valid");
    let p_cache = power
        .tier_powers(&caches, &demands, &vf, &vec![t; caches.elements().len()])
        .expect("valid");
    let maps = vec![
        grid.power_map(&cores, &p_core, niagara::DIE_WIDTH, niagara::DIE_HEIGHT)
            .expect("mapped"),
        grid.power_map(&caches, &p_cache, niagara::DIE_WIDTH, niagara::DIE_HEIGHT)
            .expect("mapped"),
    ];
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let mut model = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("builds");
    model
        .set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
        .expect("valid flow");
    let field = model.steady_state(&maps).expect("solves");
    for busy in 0..4usize {
        for idle in 4..8usize {
            let t_busy = field.element_average(&grid, &cores, 0, busy);
            let t_idle = field.element_average(&grid, &cores, 0, idle);
            assert!(
                t_busy.0 > t_idle.0,
                "core{busy} ({t_busy}) must be hotter than core{idle} ({t_idle})"
            );
        }
    }
}

#[test]
fn air_and_liquid_models_agree_when_flow_dominates() {
    // Sanity: with maximum flow the liquid-cooled peak is far below the
    // air-cooled peak for the same power maps.
    let grid = GridSpec::new(10, 10).expect("static dims");
    let (maps, _) = niagara_maps(grid, 1.0);
    let mut lc = ThermalModel::new(
        &presets::liquid_cooled_mpsoc(2).expect("preset"),
        grid,
        ThermalParams::default(),
    )
    .expect("builds");
    lc.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))
        .expect("valid flow");
    let lc_peak = lc.steady_state(&maps).expect("solves").max();
    let mut ac = ThermalModel::new(
        &presets::air_cooled_mpsoc(2).expect("preset"),
        grid,
        ThermalParams::default(),
    )
    .expect("builds");
    let ac_peak = ac.steady_state(&maps).expect("solves").max();
    assert!(
        lc_peak.0 + 15.0 < ac_peak.0,
        "liquid cooling must beat air by a wide margin: {lc_peak} vs {ac_peak}"
    );
}

#[test]
fn grid_refinement_converges() {
    // Peak temperature must move by less than ~2 K between 12x12 and
    // 20x20 — the compact model is grid-converged at production
    // resolution.
    let mut peaks = Vec::new();
    for n in [12usize, 20] {
        let grid = GridSpec::new(n, n).expect("valid dims");
        let (maps, _) = niagara_maps(grid, 0.9);
        let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
        let mut model = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("builds");
        model
            .set_flow_rate(VolumetricFlow::from_ml_per_min(25.0))
            .expect("valid flow");
        peaks.push(model.steady_state(&maps).expect("solves").max().0);
    }
    assert!(
        (peaks[0] - peaks[1]).abs() < 2.0,
        "12x12 vs 20x20 peaks: {:?}",
        peaks
    );
}
