//! Integration tests of the design-space optimizer:
//!
//! * grid search and coordinate descent agree on the optimum of the
//!   small reference space (pinned to the known answer);
//! * the optimize report is bit-identical at 1 vs 8 threads and across
//!   reruns with the same seed;
//! * the infeasibility early abort truncates infeasible runs without
//!   changing the optimum or the Pareto front;
//! * invalid design-space corners are skipped, not fatal;
//! * the `ConstraintMonitor` stop request propagates through
//!   `Simulator::run_observed` and truncates the run's metrics.

use cmosaic::batch::BatchRunner;
use cmosaic::optimize::{
    ConstraintMonitor, Constraints, CoordinateDescent, DesignAxis, DesignPoint, DesignSpace,
    Evaluator, GridSearch, Optimizer, SearchStrategy,
};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::{CoolantChoice, FlowSchedule, ScenarioSpec};
use cmosaic::CmosaicError;
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::{Celsius, VolumetricFlow};
use cmosaic_power::trace::WorkloadKind;
use cmosaic_thermal::TwoPhaseCoolant;

fn ml(x: f64) -> VolumetricFlow {
    VolumetricFlow::from_ml_per_min(x)
}

/// The small reference space: 2 tier counts x 6 fixed flow rates under
/// the worst-case workload — low flows overheat, high flows waste pump
/// energy, so the optimum is the lowest flow that stays under 85 °C.
fn reference_space() -> DesignSpace {
    let base = ScenarioSpec::new()
        .policy(PolicyKind::LcLb)
        .workload(WorkloadKind::MaxUtilization)
        .grid(GridSpec::new(6, 6).expect("static"))
        .thermal_dt(0.5)
        .seconds(12)
        .seed(7);
    DesignSpace::new(base)
        .with_axis(DesignAxis::tiers([2, 4]))
        .with_axis(DesignAxis::flow_rates([
            ml(6.0),
            ml(10.0),
            ml(14.0),
            ml(20.0),
            ml(26.0),
            ml(32.3),
        ]))
}

fn ceiling() -> Constraints {
    Constraints::peak_below(Celsius(85.0))
}

#[test]
fn grid_and_descent_agree_on_the_reference_optimum() {
    let runner = BatchRunner::new(4);
    let optimizer = Optimizer::new(reference_space(), ceiling(), &runner);
    let grid = optimizer.run(&mut GridSearch).expect("grid runs");
    let descent = optimizer
        .run(&mut CoordinateDescent::seeded(3))
        .expect("descent runs");

    // Pinned optimum: the 2-tier stack at 20 ml/min — the lowest flow
    // meeting the ceiling on the shorter stack.
    let best = grid.best.as_ref().expect("feasible designs exist");
    assert_eq!(best.design, DesignPoint::new(vec![0, 3]), "{}", best.label);
    assert_eq!(best.label, "2-tier, 20.0 ml/min");
    assert!(best.feasible && best.peak.to_celsius().0 < 85.0);
    assert_eq!(
        descent.best.as_ref().expect("descent feasible").design,
        best.design,
        "both strategies must land on the same optimum"
    );
    // The exhaustive sweep covered the whole space; the adaptive one at
    // most that (memoized line sweeps).
    assert_eq!(grid.n_evaluations(), 12);
    assert!(descent.n_evaluations() <= 12);
    // Every design cheaper than the optimum is infeasible (that is what
    // makes it the optimum).
    for e in &grid.evaluations {
        if e.pump_energy < best.pump_energy {
            assert!(!e.feasible, "{} undercuts the optimum feasibly", e.label);
        }
    }
    // The front is ranked by energy and its cheapest point is the best.
    let front = grid.front.points();
    assert!(front.len() >= 2, "a trade-off curve, not a single point");
    assert_eq!(front[0].design, best.design);
    assert!(front
        .windows(2)
        .all(|w| w[0].pump_energy <= w[1].pump_energy));
}

#[test]
fn reports_are_bit_identical_across_threads_and_reruns() {
    let space = reference_space;
    let serial = Optimizer::new(space(), ceiling(), &BatchRunner::new(1))
        .run(&mut GridSearch)
        .expect("serial grid");
    let parallel = Optimizer::new(space(), ceiling(), &BatchRunner::new(8))
        .run(&mut GridSearch)
        .expect("parallel grid");
    assert_eq!(serial, parallel, "thread count must not leak into results");

    let d1 = Optimizer::new(space(), ceiling(), &BatchRunner::new(8))
        .run(&mut CoordinateDescent::seeded(11).restarts(2))
        .expect("descent");
    let d2 = Optimizer::new(space(), ceiling(), &BatchRunner::new(2))
        .run(&mut CoordinateDescent::seeded(11).restarts(2))
        .expect("descent rerun");
    assert_eq!(d1, d2, "same seed, same trajectory, any thread count");
    assert_eq!(
        d1.best.as_ref().map(|b| b.design.clone()),
        serial.best.as_ref().map(|b| b.design.clone()),
    );
}

#[test]
fn early_abort_saves_epochs_without_changing_the_answer() {
    let runner = BatchRunner::new(4);
    let aborting = Optimizer::new(reference_space(), ceiling(), &runner)
        .run(&mut GridSearch)
        .expect("aborting grid");
    let full = Optimizer::new(reference_space(), ceiling(), &runner)
        .without_early_abort()
        .run(&mut GridSearch)
        .expect("non-aborting grid");

    // Without the abort every design runs to its full budget.
    assert_eq!(full.epochs_run, full.epochs_budget);
    assert_eq!(full.early_abort_savings(), 0.0);
    // With it, infeasible designs stop at their first violation — the
    // reference space has 5 infeasible designs that all violate within a
    // couple of epochs, so well under half the budget is simulated.
    assert!(
        aborting.epochs_run < aborting.epochs_budget,
        "abort must truncate infeasible runs ({} vs {})",
        aborting.epochs_run,
        aborting.epochs_budget
    );
    assert!(aborting.early_abort_savings() > 0.3);
    // Feasible designs are untouched, so best and front agree exactly.
    assert_eq!(aborting.best, full.best);
    assert_eq!(aborting.front, full.front);
    // And each infeasible evaluation stopped right at its violation.
    for e in aborting.evaluations.iter().filter(|e| !e.feasible) {
        let v = e.violation.as_ref().expect("infeasible has a violation");
        assert_eq!(e.epochs_run, v.epoch + 1, "{}", e.label);
        assert_eq!(
            e.metrics.seconds, e.epochs_run,
            "metrics cover the truncated run"
        );
    }
}

/// A probing strategy used to exercise `Evaluator` corners no built-in
/// strategy hits: skipped designs and the memoizing cache.
struct Probe {
    checked: bool,
}

impl SearchStrategy for Probe {
    fn name(&self) -> &str {
        "probe"
    }

    fn explore(&mut self, evaluator: &mut Evaluator<'_>) -> Result<(), CmosaicError> {
        let points = evaluator.space().points();
        // Evaluate everything twice: the second pass must be free (the
        // cache absorbs it) and change nothing.
        evaluator.evaluate_all(&points)?;
        let n = evaluator.evaluations().len();
        evaluator.evaluate_all(&points)?;
        assert_eq!(evaluator.evaluations().len(), n, "revisits are memoized");
        // Two-phase x fixed-flow corners are skipped with a Config error.
        assert!(!evaluator.skipped().is_empty());
        for (point, err) in evaluator.skipped() {
            assert!(matches!(err, CmosaicError::Config { .. }));
            assert!(evaluator.evaluation(point).is_none());
            assert!(evaluator.skip_reason(point).is_some());
        }
        self.checked = true;
        Ok(())
    }
}

#[test]
fn invalid_design_corners_are_skipped_not_fatal() {
    let base = ScenarioSpec::new()
        .policy(PolicyKind::LcLb)
        .workload(WorkloadKind::WebServer)
        .grid(GridSpec::new(6, 6).expect("static"))
        .thermal_dt(0.5)
        .seconds(2)
        .seed(1);
    let space = DesignSpace::new(base)
        .with_axis(DesignAxis::coolants([
            CoolantChoice::Water,
            CoolantChoice::TwoPhase(TwoPhaseCoolant::r134a_30c(2800.0)),
        ]))
        .with_axis(DesignAxis::flow_schedules([
            ("policy", FlowSchedule::Policy),
            ("fixed", FlowSchedule::Fixed(ml(20.0))),
        ]));
    let runner = BatchRunner::new(2);
    let mut probe = Probe { checked: false };
    let report = Optimizer::new(space, ceiling(), &runner)
        .run(&mut probe)
        .expect("skipped corners are not errors");
    assert!(probe.checked);
    assert_eq!(report.skipped, 1, "exactly the two-phase x fixed cell");
    assert_eq!(report.n_evaluations(), 3);
    assert!(report.best.is_some());
}

#[test]
fn constraint_monitor_truncates_a_direct_scenario_run() {
    // An under-pumped 2-tier stack under full load violates 85 °C within
    // a few seconds; the monitor must stop the run right there.
    let scenario = ScenarioSpec::new()
        .policy(PolicyKind::LcLb)
        .workload(WorkloadKind::MaxUtilization)
        .grid(GridSpec::new(6, 6).expect("static"))
        .thermal_dt(0.5)
        .flow_schedule(FlowSchedule::Fixed(ml(6.0)))
        .seconds(30)
        .seed(7)
        .build()
        .expect("valid spec");
    let mut monitor = ConstraintMonitor::new(Constraints::peak_below(Celsius(85.0)));
    let metrics = scenario.run_observed(&mut monitor).expect("run completes");
    let violation = monitor.violation().expect("the design is infeasible");
    assert!(metrics.seconds < 30, "the run was truncated");
    assert_eq!(metrics.seconds, violation.epoch + 1);
    assert_eq!(metrics.seconds, monitor.epochs_seen());
    assert!(metrics.peak_temperature.to_celsius().0 > 85.0);

    // The observe-only variant sees the same violation but runs in full.
    let mut watcher = ConstraintMonitor::new(Constraints::peak_below(Celsius(85.0))).observe_only();
    let full = scenario.run_observed(&mut watcher).expect("full run");
    assert_eq!(full.seconds, 30);
    assert_eq!(
        watcher.violation().map(|v| v.epoch),
        Some(violation.epoch),
        "the first violation is the same either way"
    );
}
