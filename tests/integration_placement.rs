//! Integration tests of thermal-aware placement optimization:
//!
//! * property tests — every deterministic placement move (block swap,
//!   hot-spot spread, gap cavity toggle) yields a re-validated
//!   `Floorplan`/`Stack3d` with the footprint, element set and layer
//!   budget intact;
//! * seeded simulated annealing on the reference 2-tier Niagara
//!   placement space lands on the exhaustive grid's optimum after
//!   simulating well under half the space;
//! * the annealing report is bit-identical across the
//!   `CMOSAIC_TEST_THREADS` sweep and across reruns with the same seed.

use std::sync::Arc;

use cmosaic::batch::BatchRunner;
use cmosaic::optimize::{
    Constraints, DesignAxis, DesignSpace, GridSearch, OptimizeReport, Optimizer,
    SimulatedAnnealing, StackTransform,
};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::ScenarioSpec;
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::transform::{
    gap_states, set_gap_cavity, spread_hotspots_in_tier, swap_in_tier,
};
use cmosaic_floorplan::{CavitySpec, ElementKind, GridSpec, Stack3d};
use cmosaic_materials::units::{Celsius, VolumetricFlow};
use cmosaic_power::trace::WorkloadKind;
use proptest::collection;
use proptest::prelude::*;

/// Thread counts to sweep: `CMOSAIC_TEST_THREADS` (comma-separated) or
/// the default `[1, 8]`.
fn thread_counts() -> Vec<usize> {
    match std::env::var("CMOSAIC_TEST_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CMOSAIC_TEST_THREADS is numeric"))
            .collect(),
        Err(_) => vec![1, 8],
    }
}

/// The invariants any placement move must preserve: footprint, tier
/// count, element sets per tier (by name), layer budget and total
/// thickness. Validation itself (overlaps, bounds, layer ordering) was
/// already re-run by `Stack3d::from_parts` — reaching this function at
/// all means the move produced a *valid* stack.
fn assert_stack_invariants(before: &Stack3d, after: &Stack3d) {
    assert_eq!(before.width(), after.width());
    assert_eq!(before.height(), after.height());
    assert_eq!(before.tiers().len(), after.tiers().len());
    assert_eq!(before.layers().len(), after.layers().len());
    assert!((before.total_thickness() - after.total_thickness()).abs() < 1e-12);
    for (b, a) in before.tiers().iter().zip(after.tiers()) {
        assert_eq!(b.elements().len(), a.elements().len());
        let mut b_names: Vec<&str> = b.elements().iter().map(|e| e.name()).collect();
        let mut a_names: Vec<&str> = a.elements().iter().map(|e| e.name()).collect();
        b_names.sort_unstable();
        a_names.sort_unstable();
        assert_eq!(b_names, a_names, "placement moves relocate, never rename");
        assert!((b.occupied_area() - a.occupied_area()).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any swap of two named blocks in any tier is a valid placement.
    #[test]
    fn any_block_swap_yields_a_valid_stack(
        a in 0usize..8,
        b in 0usize..8,
        tier in 0usize..2,
    ) {
        let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
        // Tier 0 is the core tier (core0..core7), tier 1 the cache tier
        // (l2_0..l2_3): swap two blocks native to whichever tier we hit.
        let (name_a, name_b) = if tier == 0 {
            (format!("core{a}"), format!("core{b}"))
        } else {
            (format!("l2_{}", a % 4), format!("l2_{}", b % 4))
        };
        let swapped = swap_in_tier(&stack, tier, &name_a, &name_b)
            .expect("swapping existing blocks is always valid");
        assert_stack_invariants(&stack, &swapped);
        // The two blocks really trade places (identity swap allowed).
        let plan = &stack.tiers()[tier];
        let moved = &swapped.tiers()[tier];
        let rect_of = |p: &cmosaic_floorplan::Floorplan, n: &str| {
            *p.elements()[p.index_of(n).expect("present")].rect()
        };
        prop_assert_eq!(rect_of(plan, &name_a), rect_of(moved, &name_b));
    }

    /// Any hot-spot-aware spread (arbitrary non-negative weights) is a
    /// valid placement that keeps the cores on the same slot set.
    #[test]
    fn any_hotspot_spread_yields_a_valid_stack(
        weights in collection::vec(0.0f64..10.0, 8),
    ) {
        let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
        let spread = spread_hotspots_in_tier(&stack, 0, ElementKind::Core, &weights)
            .expect("spreading over existing slots is always valid");
        assert_stack_invariants(&stack, &spread);
        // Cores permute over the original core slots: same rect multiset.
        let rects = |s: &Stack3d| {
            let plan = &s.tiers()[0];
            let mut r: Vec<String> = plan
                .indices_of_kind(ElementKind::Core)
                .into_iter()
                .map(|i| format!("{:?}", plan.elements()[i].rect()))
                .collect();
            r.sort_unstable();
            r
        };
        prop_assert_eq!(rects(&stack), rects(&spread));
    }

    /// Toggling any inter-tier gap off and back on round-trips the layer
    /// stack: same layer count, same total thickness, same gap states.
    #[test]
    fn any_gap_toggle_round_trips(gap in 0usize..3, tall in 0usize..2) {
        let tiers = if tall == 0 { 2 } else { 4 };
        let stack = presets::liquid_cooled_mpsoc(tiers).expect("preset");
        let gap = gap % (tiers - 1); // a valid gap for this stack height

        let bonded = set_gap_cavity(&stack, gap, None).expect("bonding a gap is valid");
        prop_assert!(!gap_states(&bonded)[gap]);
        prop_assert_eq!(bonded.layers().len(), stack.layers().len());
        let restored = set_gap_cavity(&bonded, gap, Some(CavitySpec::table1()))
            .expect("re-opening a gap is valid");
        prop_assert!(gap_states(&restored)[gap]);
        prop_assert_eq!(restored.layers().len(), stack.layers().len());
        prop_assert!(
            (restored.total_thickness() - stack.total_thickness()).abs() < 1e-12
        );
        prop_assert!((restored.silicon_area() - stack.silicon_area()).abs() < 1e-12);
    }
}

/// The reference 2-tier Niagara placement space shared with
/// `examples/optimize_placement.rs` and the `perf_placement` bench:
/// pump operating point x block placement x inter-tier channel
/// geometry, under the database workload (skewed per-core load, so
/// placement genuinely moves the peak junction temperature).
fn placement_space() -> DesignSpace {
    let ml = VolumetricFlow::from_ml_per_min;
    let base = ScenarioSpec::new()
        .policy(PolicyKind::LcLb)
        .workload(WorkloadKind::Database)
        .grid(GridSpec::new(6, 6).expect("static dims"))
        .thermal_dt(0.5)
        .tiers(2)
        .seconds(12)
        .seed(7);
    let identity: StackTransform = Arc::new(|s| Ok(s.clone()));
    let swap: StackTransform = Arc::new(|s| swap_in_tier(s, 0, "core0", "core7"));
    let spread: StackTransform = Arc::new(|s| {
        spread_hotspots_in_tier(
            s,
            0,
            ElementKind::Core,
            &[8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
        )
    });
    let table1: StackTransform = Arc::new(|s| set_gap_cavity(s, 0, Some(CavitySpec::table1())));
    let wide: StackTransform = Arc::new(|s| {
        let spec = CavitySpec::new(
            0.1e-3,
            0.15e-3,
            0.1e-3,
            cmosaic_materials::solids::SolidMaterial::silicon(),
        )?;
        set_gap_cavity(s, 0, Some(spec))
    });
    DesignSpace::new(base)
        .with_axis(DesignAxis::flow_rates([
            ml(14.0),
            ml(20.0),
            ml(26.0),
            ml(32.3),
        ]))
        .with_axis(DesignAxis::stack_transforms(
            "placement",
            [
                ("as-designed", identity),
                ("swap(core0,core7)", swap),
                ("spread(core)", spread),
            ],
        ))
        .with_axis(DesignAxis::stack_transforms(
            "channel",
            [("table1 channels", table1), ("wide channels", wide)],
        ))
}

/// The annealing seed/step budget pinned by the example and bench.
const SA_SEED: u64 = 11;
const SA_STEPS: usize = 12;

fn anneal(threads: usize) -> OptimizeReport {
    Optimizer::new(
        placement_space(),
        Constraints::peak_below(Celsius(85.0)),
        &BatchRunner::new(threads),
    )
    .run(&mut SimulatedAnnealing::seeded(SA_SEED).steps(SA_STEPS))
    .expect("annealing runs")
}

#[test]
fn annealing_finds_the_grid_optimum_with_a_fraction_of_the_simulations() {
    let runner = BatchRunner::new(4);
    let optimizer = Optimizer::new(
        placement_space(),
        Constraints::peak_below(Celsius(85.0)),
        &runner,
    );
    let grid = optimizer.run(&mut GridSearch).expect("grid runs");
    let sa = optimizer
        .run(&mut SimulatedAnnealing::seeded(SA_SEED).steps(SA_STEPS))
        .expect("annealing runs");

    // Pinned optimum: all three axes are decisive. 14 ml/min overheats,
    // wide channels breach 85 C at 20 ml/min, and among the feasible
    // 20 ml/min designs the as-designed placement has the lowest peak.
    let best = grid.best.as_ref().expect("feasible designs exist");
    assert_eq!(best.label, "20.0 ml/min, as-designed, table1 channels");
    let sa_best = sa.best.as_ref().expect("annealer lands feasible");
    assert_eq!(sa_best.design, best.design, "{}", sa_best.label);

    // The annealer simulated at most 40% of the exhaustive grid — the
    // nightly perf gate's threshold, pinned here in debug as well.
    assert_eq!(grid.n_evaluations(), 24);
    assert!(
        sa.n_evaluations() * 5 <= grid.n_evaluations() * 2,
        "{} of {} distinct designs simulated",
        sa.n_evaluations(),
        grid.n_evaluations()
    );
    // Revisits were served by the memoizing evaluator, not re-simulated.
    assert!(sa.memo_hits > 0);
    assert_eq!(
        sa.eval_requests,
        SA_STEPS + 1,
        "one request per step + start"
    );
    assert!((sa.memo_hit_rate() - sa.memo_hits as f64 / sa.eval_requests as f64).abs() < 1e-12);

    // The Pareto front trades all three objectives: the wide-channel
    // designs buy silicon area back at a peak-temperature premium.
    let front = grid.front.points();
    assert!(front.len() >= 3, "a trade-off surface, not a single point");
    let areas: std::collections::BTreeSet<u64> =
        front.iter().map(|p| (p.area * 1e12) as u64).collect();
    assert!(
        areas.len() >= 2,
        "area must be a live objective on the front"
    );
    assert_eq!(
        front[0].design, best.design,
        "cheapest front point is the optimum"
    );
}

#[test]
fn annealing_reports_are_bit_identical_across_threads_and_reruns() {
    let reports: Vec<OptimizeReport> = thread_counts().into_iter().map(anneal).collect();
    for pair in reports.windows(2) {
        assert_eq!(pair[0], pair[1], "thread count must not leak into results");
    }
    let rerun = anneal(thread_counts()[0]);
    assert_eq!(reports[0], rerun, "same seed, same trajectory");
}
