//! Integration tests of the per-block actuation layer:
//!
//! * the pinned actuation study (flow modulation vs. task migration vs.
//!   both on identical traces) is bit-identical across the
//!   `CMOSAIC_TEST_THREADS` sweep and across reruns, holds the thermal
//!   constraint under every strategy, and the combined controller spends
//!   the least pump energy;
//! * heterogeneous stacks (memory-on-logic, mixed core/accelerator)
//!   simulate end-to-end under the matching allocator presets and the
//!   actuation policies;
//! * every new actuation axis (allocator preset, migration seed, policy
//!   variant, heterogeneous stack) produces a distinct scenario
//!   fingerprint.

use cmosaic::batch::BatchRunner;
use cmosaic::experiments::{actuation_dataset, actuation_policies, actuation_study, ActuationRow};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::ScenarioSpec;
use cmosaic::study::{Study, StudyReport};
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;
use cmosaic_power::AllocatorPreset;

/// Thread counts to sweep: `CMOSAIC_TEST_THREADS` (comma-separated) or
/// the default `[1, 8]`.
fn thread_counts() -> Vec<usize> {
    match std::env::var("CMOSAIC_TEST_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CMOSAIC_TEST_THREADS is numeric"))
            .collect(),
        Err(_) => vec![1, 8],
    }
}

/// The reference operating point shared with `examples/policy_actuation.rs`
/// and the `perf_policies` bench.
const SECONDS: usize = 20;
const SEED: u64 = 42;

fn reference_grid() -> GridSpec {
    GridSpec::new(8, 8).expect("static dims")
}

fn run_reference(threads: usize) -> StudyReport {
    actuation_study(SECONDS, SEED, reference_grid())
        .run(&BatchRunner::new(threads))
        .expect("reference study runs")
}

#[test]
fn actuation_study_is_bit_identical_across_threads_and_reruns() {
    let reports: Vec<StudyReport> = thread_counts().into_iter().map(run_reference).collect();
    // `StudyReport` records the worker-thread count it ran on; the
    // *results* — per-slot metrics and solver statistics — must not.
    for pair in reports.windows(2) {
        assert_eq!(
            pair[0].slots(),
            pair[1].slots(),
            "thread count must not leak into results"
        );
    }
    let rerun = run_reference(thread_counts()[0]);
    assert_eq!(
        reports[0].slots(),
        rerun.slots(),
        "same seed, same trajectory"
    );
    assert_eq!(
        reports[0], rerun,
        "full reports match on an identical rerun"
    );
}

#[test]
fn combined_control_holds_the_constraint_at_the_lowest_pump_energy() {
    let rows: Vec<ActuationRow> =
        actuation_dataset(&BatchRunner::new(2), SECONDS, SEED, reference_grid())
            .expect("reference dataset runs");
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].policy, PolicyKind::LcFuzzyFlowOnly);
    assert_eq!(rows[1].policy, PolicyKind::LcMigration { seed: SEED });
    assert_eq!(rows[2].policy, PolicyKind::LcMigrationFuzzy { seed: SEED });
    for r in &rows {
        assert!(
            r.peak_celsius < 85.0,
            "{} breaches the constraint: {:.1} °C",
            r.policy,
            r.peak_celsius
        );
        assert!(
            r.hotspot_pct_any < 1.0,
            "{} spends {:.2} % above the hot-spot threshold",
            r.policy,
            r.hotspot_pct_any
        );
    }
    // Migration-only runs at worst-case maximum flow; the combined
    // controller strictly undercuts both single-actuator strategies.
    let combined = &rows[2];
    assert!(
        combined.pump_energy < rows[1].pump_energy,
        "combined ({:.1} J) vs max-flow migration ({:.1} J)",
        combined.pump_energy,
        rows[1].pump_energy
    );
    assert!(
        combined.pump_energy < rows[0].pump_energy,
        "combined ({:.1} J) vs flow-only ({:.1} J)",
        combined.pump_energy,
        rows[0].pump_energy
    );
}

#[test]
fn heterogeneous_stacks_run_the_actuation_policies_end_to_end() {
    // Each heterogeneous preset stack is priced by its matching allocator
    // and driven through all three actuation strategies on one trace.
    let cases = [
        (
            presets::memory_on_logic(4).expect("preset"),
            AllocatorPreset::MemoryOnLogic,
        ),
        (
            presets::accelerated_mpsoc(4).expect("preset"),
            AllocatorPreset::MixedAccelerator,
        ),
    ];
    let runner = BatchRunner::new(2);
    for (stack, allocator) in cases {
        let name = stack.name().to_string();
        let report = Study::new(
            ScenarioSpec::new()
                .stack(stack)
                .allocator(allocator)
                .workload(WorkloadKind::WebServer)
                .seconds(10)
                .seed(SEED)
                .grid(GridSpec::new(6, 6).expect("static dims")),
        )
        .over_policies(actuation_policies(SEED))
        .run(&runner)
        .expect("heterogeneous study runs");
        assert!(report.all_ok(), "{name}: {:?}", report.first_error());
        assert_eq!(report.len(), 3);
        for (spec, outcome) in report.iter() {
            let m = &outcome.metrics;
            let peak = m.peak_temperature.to_celsius().0;
            assert!(
                peak > 30.0 && peak < 85.0,
                "{name}/{}: implausible peak {peak:.1} °C",
                spec.policy_kind()
            );
            assert!(m.chip_energy > 0.0 && m.pump_energy > 0.0);
        }
        // Migration at max flow pays more pump energy than the fuzzy
        // variants on heterogeneous floorplans too.
        let pump_of = |p: PolicyKind| {
            report
                .metrics_matching(|s| s.policy_kind() == p)
                .expect("cell exists")
                .pump_energy
        };
        let migration = pump_of(PolicyKind::LcMigration { seed: SEED });
        let combined = pump_of(PolicyKind::LcMigrationFuzzy { seed: SEED });
        assert!(
            combined < migration,
            "{name}: combined {combined:.1} J vs migration {migration:.1} J"
        );
    }
}

#[test]
fn every_actuation_axis_moves_the_scenario_fingerprint() {
    let base = ScenarioSpec::new()
        .tiers(4)
        .workload(WorkloadKind::WebServer)
        .seconds(SECONDS)
        .seed(SEED)
        .grid(reference_grid());
    let variants = [
        base.clone(),
        base.clone().allocator(AllocatorPreset::MemoryOnLogic),
        base.clone().allocator(AllocatorPreset::MixedAccelerator),
        base.clone().policy(PolicyKind::LcFuzzyFlowOnly),
        base.clone().policy(PolicyKind::LcMigration { seed: SEED }),
        base.clone()
            .policy(PolicyKind::LcMigration { seed: SEED + 1 }),
        base.clone()
            .policy(PolicyKind::LcMigrationFuzzy { seed: SEED }),
        base.clone().policy(PolicyKind::LcTierDvfs),
        base.clone()
            .stack(presets::memory_on_logic(4).expect("preset"))
            .allocator(AllocatorPreset::MemoryOnLogic),
    ];
    let fps: Vec<u64> = variants.iter().map(ScenarioSpec::fingerprint).collect();
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            assert_ne!(
                fps[i], fps[j],
                "variants {i} and {j} collide on fingerprint {:#x}",
                fps[i]
            );
        }
    }
    // The pinned study itself spans three distinct cells.
    let study = actuation_study(SECONDS, SEED, reference_grid());
    let study_fps: std::collections::BTreeSet<u64> = study
        .specs()
        .iter()
        .map(ScenarioSpec::fingerprint)
        .collect();
    assert_eq!(study_fps.len(), 3);
}
