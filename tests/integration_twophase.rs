//! Cross-crate integration of the two-phase path: the §III behaviours that
//! distinguish flow boiling from the single-phase model must hold when
//! both are driven by the same library.

use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_hydraulics::duct::ChannelGeometry;
use cmosaic_materials::refrigerant::Refrigerant;
use cmosaic_materials::units::{Kelvin, VolumetricFlow};
use cmosaic_thermal::{ThermalModel, ThermalParams};
use cmosaic_twophase::compare::compare_for_load;
use cmosaic_twophase::MicroEvaporator;

#[test]
fn single_phase_heats_up_while_two_phase_cools_down() {
    // Single-phase (water) outlet through the compact thermal model…
    let grid = GridSpec::new(8, 8).expect("static dims");
    let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
    let mut model = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("builds");
    model
        .set_flow_rate(VolumetricFlow::from_ml_per_min(20.0))
        .expect("valid flow");
    let maps = vec![vec![20.0 / 64.0; 64]; 2];
    model.steady_state(&maps).expect("solves");
    let water_rise = model.fluid_outlet_mean().0 - Kelvin::from_celsius(27.0).0;
    assert!(water_rise > 1.0, "water must heat up ({water_rise} K)");

    // …versus the two-phase evaporator outlet.
    let result = MicroEvaporator::fig8().solve(300).expect("solves");
    let refrigerant_drop = result.inlet_fluid.0 - result.outlet_fluid.0;
    assert!(
        refrigerant_drop > 0.0,
        "refrigerant must cool down ({refrigerant_drop} K)"
    );
}

#[test]
fn hot_spot_self_regulation_beats_single_phase() {
    // §IV.B: the boiling HTC rises under the hot spot, so the wall
    // excursion is a fraction of what a constant-HTC (single-phase)
    // coolant would see.
    let result = MicroEvaporator::fig8().solve(400).expect("solves");
    let background = &result.rows[0];
    let hot = &result.rows[2];
    let flux_ratio = hot.heat_flux / background.heat_flux;
    let superheat_ratio = (hot.wall.0 - hot.fluid.0) / (background.wall.0 - background.fluid.0);
    // Single-phase: superheat ratio == flux ratio (h constant).
    assert!(superheat_ratio < flux_ratio / 4.0);
    // Two-phase wall excursion across the whole die stays within ~10 K.
    let span = result
        .rows
        .iter()
        .map(|r| r.wall.0)
        .fold(f64::NEG_INFINITY, f64::max)
        - result
            .rows
            .iter()
            .map(|r| r.wall.0)
            .fold(f64::INFINITY, f64::min);
    assert!(span < 10.0, "wall span {span} K too wide");
}

#[test]
fn refrigerant_needs_a_fraction_of_the_water_flow() {
    let geom = ChannelGeometry::new(85e-6, 560e-6, 12.5e-3).expect("valid");
    let c = compare_for_load(
        100.0,
        135,
        &geom,
        Refrigerant::R134a,
        Kelvin::from_celsius(30.0),
        4.0,
        0.55,
    )
    .expect("comparison valid");
    assert!(
        c.flow_ratio > 0.05 && c.flow_ratio < 0.3,
        "flow ratio {} outside the paper's 1/5..1/10 neighbourhood",
        c.flow_ratio
    );
    assert!(c.pump_saving_pct > 70.0);
}

#[test]
fn dryout_bound_is_respected_at_the_paper_operating_points() {
    let r = MicroEvaporator::fig8().solve(300).expect("solves");
    assert!(r.dryout_margin > 0.0);
    assert!(r.outlet_quality > 0.05, "some evaporation must happen");
    assert!(r.pressure_drop.to_bar() < 0.9, "Agostini bound");
}
