//! Failure-path integration suite for the fault-tolerant batch engine:
//!
//! * a panicking donor never deadlocks its adopters — they run unshared
//!   and the batch still returns a complete, partial `BatchReport`;
//! * an injected NaN at epoch `k` exhausts the retry ladder and surfaces
//!   `ScenarioError::Diverged` with the correct epoch and cell;
//! * an iterative-solver breakdown is healed by stepwise backend
//!   demotion — one rung (ILU(0)→direct) on an ILU(0) scenario, two
//!   rungs (multigrid→ILU(0)→direct) on a multigrid scenario — and a
//!   dt-gated NaN by exactly one Δt-halving;
//! * a mixed batch (panicking + diverging + self-healing + healthy
//!   scenarios) is bit-identical across thread counts with the healthy
//!   aggregates intact;
//! * a checkpointed study killed partway (`with_job_limit`) resumes from
//!   its journal bit-identical to an uninterrupted run.
//!
//! The thread counts exercised default to 1 and 8; CI pins them via the
//! `CMOSAIC_TEST_THREADS` environment variable (comma-separated list).

use cmosaic::{BatchRunner, FaultKind, FaultPlan, ScenarioError, ScenarioSpec, Study};
use cmosaic_floorplan::GridSpec;
use cmosaic_thermal::SolverBackend;

fn tiny_grid() -> GridSpec {
    GridSpec::new(6, 6).expect("static dims")
}

fn base_spec() -> ScenarioSpec {
    ScenarioSpec::new()
        .seconds(3)
        .thermal_dt(0.2)
        .grid(tiny_grid())
}

/// Thread counts to sweep: `CMOSAIC_TEST_THREADS` (comma-separated) or
/// the default `[1, 8]`.
fn thread_counts() -> Vec<usize> {
    match std::env::var("CMOSAIC_TEST_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CMOSAIC_TEST_THREADS is numeric"))
            .collect(),
        Err(_) => vec![1, 8],
    }
}

fn temp_journal_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "cmosaic-faults-{}-{tag}-{}.journal",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn panicking_donor_releases_its_adopters_without_deadlock() {
    // All four scenarios share one operator pattern; slot 0 is the
    // group's donor and panics on its very first control interval, so
    // every adopter must be released to run unshared.
    let mut scenarios = vec![base_spec()
        .fault_plan(FaultPlan::none().at(0, FaultKind::Panic))
        .build()
        .unwrap()];
    for seed in [1u64, 2, 3] {
        scenarios.push(base_spec().seed(seed).build().unwrap());
    }

    let mut reports = Vec::new();
    for threads in thread_counts() {
        let report = BatchRunner::new(threads).run_scenarios(&scenarios);
        assert_eq!(report.outcomes().len(), 3, "{threads} threads");
        let (index, e) = report.first_error().expect("the panic is captured");
        assert_eq!(index, 0);
        assert!(
            matches!(&e.error, ScenarioError::Panicked { .. }),
            "slot 0 carries the panic: {e}"
        );
        assert_eq!(e.recovery.attempts, 1, "panics are never retried");
        reports.push(report);
    }
    for r in &reports[1..] {
        assert_eq!(
            reports[0].slots, r.slots,
            "partial reports are bit-identical across thread counts"
        );
    }
}

#[test]
fn injected_nan_exhausts_the_ladder_and_reports_the_epoch() {
    // A plain NaN fires on every attempt regardless of backend or
    // timestep: the direct-backend ladder is attempt-as-specified plus
    // two Δt-halvings, then the divergence guard's verdict stands.
    let scenario = base_spec()
        .fault_plan(FaultPlan::none().at(2, FaultKind::Nan { cell: 7 }))
        .build()
        .unwrap();
    let report = BatchRunner::new(1).run_scenarios(&[scenario]);
    let (_, e) = report.first_error().expect("divergence is captured");
    match &e.error {
        ScenarioError::Diverged { epoch, cell, value } => {
            assert_eq!(*epoch, 2, "the guard reports the faulting epoch");
            assert_eq!(*cell, 7);
            assert!(value.is_nan());
        }
        other => panic!("expected Diverged, got {other}"),
    }
    assert_eq!(e.recovery.attempts, 3, "as-specified + two halvings");
    assert_eq!(e.recovery.backend_demotions, 0);
    assert_eq!(e.recovery.dt_halvings, 2);
}

#[test]
fn breakdown_is_healed_by_exactly_one_backend_demotion() {
    let scenario = base_spec()
        .solver(SolverBackend::iterative())
        .fault_plan(FaultPlan::none().at(1, FaultKind::IterativeBreakdown))
        .build()
        .unwrap();
    let report = BatchRunner::new(1).run_scenarios(&[scenario]);
    assert!(report.all_ok(), "{:?}", report.first_error());
    let outcome = report.outcomes()[0];
    assert_eq!(outcome.recovery.attempts, 2);
    assert_eq!(
        outcome.recovery.backend_demotions, 1,
        "demoted exactly once"
    );
    assert_eq!(outcome.recovery.dt_halvings, 0);
    // The demoted retry really ran direct LU: no iterative solves left.
    assert_eq!(outcome.solver.iterative_solves, 0, "{:?}", outcome.solver);
    assert!(
        outcome.solver.full_factorizations >= 1,
        "{:?}",
        outcome.solver
    );
}

#[test]
fn mg_breakdown_walks_both_rungs_of_the_ladder() {
    // The injected breakdown fires while the backend is iterative, so a
    // multigrid scenario demotes twice — mg → ILU(0) (still iterative,
    // fires again) → direct — before it clears, burning no Δt halving.
    // The walk is a per-scenario property, so it must be bit-identical
    // at every thread count.
    let scenario = base_spec()
        .solver(SolverBackend::multigrid())
        .fault_plan(FaultPlan::none().at(1, FaultKind::IterativeBreakdown))
        .build()
        .unwrap();
    let scenarios = vec![scenario];
    let mut reports = Vec::new();
    for threads in thread_counts() {
        let report = BatchRunner::new(threads).run_scenarios(&scenarios);
        assert!(report.all_ok(), "{:?}", report.first_error());
        let outcome = report.outcomes()[0];
        assert_eq!(outcome.recovery.attempts, 3, "{threads} threads");
        assert_eq!(outcome.recovery.backend_demotions, 2, "mg walks both rungs");
        assert_eq!(outcome.recovery.dt_halvings, 0);
        // The final attempt really ran direct LU.
        assert_eq!(outcome.solver.iterative_solves, 0, "{:?}", outcome.solver);
        assert_eq!(outcome.solver.mg_cycles, 0, "{:?}", outcome.solver);
        assert!(outcome.solver.full_factorizations >= 1);
        reports.push(report);
    }
    for r in &reports[1..] {
        assert_eq!(reports[0].slots, r.slots);
    }
}

#[test]
fn mg_backend_is_bit_identical_across_thread_counts() {
    // The multigrid happy path in a mixed group layout: two mg scenarios
    // (donor + adopter of their pattern group) next to a direct pair.
    // Every slot must be bit-identical across thread counts, and the mg
    // slots must complete without a single fine-level factorisation or
    // fallback.
    let mk = |backend, seed| {
        base_spec()
            .policy(cmosaic::PolicyKind::LcFuzzy)
            .solver(backend)
            .seed(seed)
            .build()
            .unwrap()
    };
    let scenarios = vec![
        mk(SolverBackend::multigrid(), 1),
        mk(SolverBackend::DirectLu, 1),
        mk(SolverBackend::multigrid(), 2),
        mk(SolverBackend::DirectLu, 2),
    ];
    let mut reports = Vec::new();
    for threads in thread_counts() {
        let report = BatchRunner::new(threads).run_scenarios(&scenarios);
        assert!(report.all_ok(), "{:?}", report.first_error());
        for o in report.outcomes() {
            if o.index.is_multiple_of(2) {
                assert_eq!(o.solver.full_factorizations, 0, "mg slot {}", o.index);
                assert_eq!(o.solver.iterative_fallbacks, 0, "mg slot {}", o.index);
                assert!(o.solver.mg_cycles >= 1, "mg slot {}", o.index);
            }
        }
        // The backends agree on the physics to solver tolerance.
        let peaks: Vec<f64> = report
            .outcomes()
            .iter()
            .map(|o| o.metrics.peak_temperature.0)
            .collect();
        assert!((peaks[0] - peaks[1]).abs() < 1e-4, "{peaks:?}");
        assert!((peaks[2] - peaks[3]).abs() < 1e-4, "{peaks:?}");
        reports.push(report);
    }
    for r in &reports[1..] {
        assert_eq!(
            reports[0].slots, r.slots,
            "multigrid outcomes are thread-count invariant"
        );
    }
}

#[test]
fn dt_gated_nan_is_healed_by_one_halving() {
    // Fires while thermal_dt > 0.15: the as-specified attempt (0.2 s)
    // diverges, the first halving (0.1 s) clears it.
    let scenario = base_spec()
        .fault_plan(FaultPlan::none().at(
            1,
            FaultKind::NanAboveDt {
                cell: 3,
                dt_above: 0.15,
            },
        ))
        .build()
        .unwrap();
    let report = BatchRunner::new(1).run_scenarios(&[scenario]);
    assert!(report.all_ok(), "{:?}", report.first_error());
    let outcome = report.outcomes()[0];
    assert_eq!(outcome.recovery.attempts, 2);
    assert_eq!(outcome.recovery.backend_demotions, 0);
    assert_eq!(outcome.recovery.dt_halvings, 1, "healed by the finer step");
}

#[test]
fn mixed_batch_keeps_healthy_aggregates_and_thread_identity() {
    // One of everything: a panicking scenario, a ladder-exhausting NaN,
    // a breakdown that self-heals by demotion, and two healthy runs.
    let scenarios = vec![
        base_spec()
            .seed(1)
            .fault_plan(FaultPlan::none().at(0, FaultKind::Panic))
            .build()
            .unwrap(),
        base_spec()
            .seed(2)
            .fault_plan(FaultPlan::none().at(1, FaultKind::Nan { cell: 5 }))
            .build()
            .unwrap(),
        base_spec()
            .seed(3)
            .solver(SolverBackend::iterative())
            .fault_plan(FaultPlan::none().at(0, FaultKind::IterativeBreakdown))
            .build()
            .unwrap(),
        base_spec().seed(4).build().unwrap(),
        base_spec().seed(5).build().unwrap(),
    ];

    let mut reports = Vec::new();
    for threads in thread_counts() {
        let report = BatchRunner::new(threads).run_scenarios(&scenarios);
        assert_eq!(report.len(), 5, "{threads} threads");
        assert!(matches!(
            &report.slots[0].as_ref().unwrap_err().error,
            ScenarioError::Panicked { .. }
        ));
        assert!(matches!(
            &report.slots[1].as_ref().unwrap_err().error,
            ScenarioError::Diverged { epoch: 1, .. }
        ));
        for i in [2usize, 3, 4] {
            let o = report.slots[i].as_ref().expect("healthy slot");
            assert!(o.metrics.peak_temperature.0.is_finite());
            assert!(o.metrics.chip_energy > 0.0);
        }
        // Aggregates span exactly the healthy slots.
        assert_eq!(report.outcomes().len(), 3);
        assert_eq!(report.errors().len(), 2);
        reports.push(report);
    }
    for r in &reports[1..] {
        assert_eq!(
            reports[0].slots, r.slots,
            "mixed-health batches are bit-identical across thread counts"
        );
    }
}

#[test]
fn resumed_study_is_bit_identical_to_uninterrupted() {
    let study = Study::new(base_spec()).over_seeds([11, 12, 13, 14]);
    for threads in thread_counts() {
        let baseline = study.run(&BatchRunner::new(threads)).unwrap();
        assert!(baseline.all_ok());

        // "Kill" the run after two jobs, then resume at this thread
        // count from the journal the partial run left behind.
        let path = temp_journal_path(&format!("t{threads}"));
        let (partial, _) = study
            .run_checkpointed(&BatchRunner::new(threads).with_job_limit(2), &path)
            .unwrap();
        assert!(partial.outcomes().len() < study.len(), "really interrupted");
        let (full, resumed) = study
            .run_checkpointed(&BatchRunner::new(threads), &path)
            .unwrap();
        assert_eq!(resumed, partial.outcomes().len());
        assert!(full.all_ok());
        assert_eq!(
            full.slots(),
            baseline.slots(),
            "{threads}-thread resume is bit-identical to the uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn resumed_study_with_faulty_slots_keeps_its_errors() {
    // Journaled *errors* resume too: the diverging slot is recorded on
    // the first (interrupted) pass and merged verbatim on resume.
    let study = Study::from_specs(vec![
        base_spec()
            .seed(1)
            .fault_plan(FaultPlan::none().at(0, FaultKind::Nan { cell: 2 })),
        base_spec().seed(2),
        base_spec().seed(3),
    ]);
    let baseline = study.run(&BatchRunner::new(1)).unwrap();

    let path = temp_journal_path("faulty");
    study
        .run_checkpointed(&BatchRunner::new(1).with_job_limit(2), &path)
        .unwrap();
    let (full, resumed) = study.run_checkpointed(&BatchRunner::new(1), &path).unwrap();
    assert!(resumed >= 1);
    assert_eq!(full.slots(), baseline.slots());
    assert!(matches!(
        &full.slots()[0].as_ref().unwrap_err().error,
        ScenarioError::Diverged { epoch: 0, .. }
    ));
    std::fs::remove_file(&path).ok();
}

/// Nightly drill: interrupt a larger mixed-health study at every
/// possible job boundary and resume each, demanding bit-identity with
/// the uninterrupted run throughout. Run with `--ignored`.
#[test]
#[ignore = "nightly resume drill: interrupts at every job boundary"]
fn resumed_study_survives_interruption_at_every_boundary() {
    let mut specs: Vec<ScenarioSpec> = (1u64..=6).map(|s| base_spec().seed(s)).collect();
    // Make one slot diverge so errors cross the journal too.
    specs[2] = specs[2]
        .clone()
        .fault_plan(FaultPlan::none().at(1, FaultKind::Nan { cell: 4 }));
    let study = Study::from_specs(specs);
    let baseline = study.run(&BatchRunner::new(4)).unwrap();

    for cut in 1..study.len() {
        let path = temp_journal_path(&format!("drill{cut}"));
        study
            .run_checkpointed(&BatchRunner::new(4).with_job_limit(cut), &path)
            .unwrap();
        let (full, _) = study.run_checkpointed(&BatchRunner::new(4), &path).unwrap();
        assert_eq!(
            full.slots(),
            baseline.slots(),
            "resume after {cut} jobs diverged from the baseline"
        );
        std::fs::remove_file(&path).ok();
    }
}
