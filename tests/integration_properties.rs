//! Property-based cross-crate tests: physical invariants that must hold
//! for *any* operating point, not just the paper's.

use cmosaic::fuzzy::FuzzyController;
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::{niagara, GridSpec};
use cmosaic_materials::units::{Celsius, Kelvin, VolumetricFlow};
use cmosaic_power::trace::WorkloadKind;
use cmosaic_power::PowerModel;
use cmosaic_thermal::{ThermalModel, ThermalParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// More coolant never makes the chip hotter, anywhere.
    #[test]
    fn flow_monotonicity(
        ml_low in 10.0f64..20.0,
        extra in 1.0f64..12.0,
        watts in 10.0f64..70.0,
    ) {
        let grid = GridSpec::new(6, 6).expect("static dims");
        let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
        let mut m = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("builds");
        let maps = vec![
            vec![watts / 2.0 / 36.0; 36],
            vec![watts / 2.0 / 36.0; 36],
        ];
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(ml_low)).expect("valid");
        let hot = m.steady_state(&maps).expect("solves");
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(ml_low + extra)).expect("valid");
        let cool = m.steady_state(&maps).expect("solves");
        for (h, c) in hot.cells().iter().zip(cool.cells()) {
            prop_assert!(*c <= h + 1e-6, "more flow must not heat any cell");
        }
    }

    /// Junction temperatures always stay above the coolant inlet.
    #[test]
    fn no_cell_below_inlet(watts in 1.0f64..80.0, ml in 10.0f64..32.3) {
        let grid = GridSpec::new(6, 6).expect("static dims");
        let stack = presets::liquid_cooled_mpsoc(2).expect("preset");
        let mut m = ThermalModel::new(&stack, grid, ThermalParams::default()).expect("builds");
        m.set_flow_rate(VolumetricFlow::from_ml_per_min(ml)).expect("valid");
        let maps = vec![vec![watts / 72.0; 36]; 2];
        let field = m.steady_state(&maps).expect("solves");
        prop_assert!(field.min().0 >= Kelvin::from_celsius(27.0).0 - 1e-9);
    }

    /// The fuzzy controller always emits a flow inside the pump envelope,
    /// and never decreases it when the stack gets hotter.
    #[test]
    fn fuzzy_envelope_and_monotonicity(
        t1 in 30.0f64..100.0,
        dt in 0.0f64..30.0,
        util in 0.0f64..1.0,
    ) {
        let ctrl = FuzzyController::table1();
        let q1 = ctrl.flow_rate(Celsius(t1).to_kelvin(), util).to_ml_per_min();
        let q2 = ctrl.flow_rate(Celsius(t1 + dt).to_kelvin(), util).to_ml_per_min();
        prop_assert!((10.0 - 1e-9..=32.3 + 1e-9).contains(&q1));
        prop_assert!(q2 >= q1 - 1e-9, "hotter must not mean less coolant");
    }

    /// Power maps conserve total power for arbitrary per-element powers.
    #[test]
    fn power_map_conservation(
        seed in proptest::collection::vec(0.0f64..8.0, 9),
        nx in 4usize..20,
        ny in 4usize..20,
    ) {
        let grid = GridSpec::new(nx, ny).expect("valid dims");
        let plan = niagara::core_tier().expect("floorplan");
        let map = grid
            .power_map(&plan, &seed, niagara::DIE_WIDTH, niagara::DIE_HEIGHT)
            .expect("mapped");
        let total: f64 = seed.iter().sum();
        let mapped: f64 = map.iter().sum();
        prop_assert!((mapped - total).abs() < 1e-9 * total.max(1.0));
    }

    /// Niagara power is monotone in demand and bounded for any VF level.
    #[test]
    fn core_power_monotone_and_bounded(
        demand in 0.0f64..1.0,
        extra in 0.0f64..0.5,
        level in 0usize..4,
        t_c in 30.0f64..120.0,
    ) {
        let m = PowerModel::niagara();
        let t = Celsius(t_c).to_kelvin();
        let p1 = m.core_power(demand, level, t);
        let p2 = m.core_power((demand + extra).min(1.0), level, t);
        prop_assert!(p2 >= p1 - 1e-12);
        prop_assert!(p1 > 0.0 && p1 < 12.0, "core power {p1} out of band");
    }

    /// Workload traces are always inside [0, 1] and deterministic.
    #[test]
    fn traces_valid_for_any_seed(seed in 0u64..5000, cores in 1usize..32) {
        for kind in WorkloadKind::applications() {
            let tr = kind.generate(cores, 30, seed);
            prop_assert_eq!(tr.cores(), cores);
            for t in 0..tr.seconds() {
                for c in 0..cores {
                    let u = tr.utilization(t, c);
                    prop_assert!((0.0..=1.0).contains(&u));
                }
            }
            prop_assert_eq!(tr, kind.generate(cores, 30, seed));
        }
    }
}
