//! Cross-crate integration: the full co-simulation reproduces the paper's
//! §IV.A qualitative results on small configurations (kept cheap enough
//! for debug-mode CI), driven through the `ScenarioSpec` API.

use cmosaic::policy::PolicyKind;
use cmosaic::{RunMetrics, ScenarioSpec};
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;

fn run(tiers: usize, policy: PolicyKind, workload: WorkloadKind) -> RunMetrics {
    ScenarioSpec::new()
        .tiers(tiers)
        .policy(policy)
        .coolant(if policy.is_liquid_cooled() {
            cmosaic::CoolantChoice::Water
        } else {
            cmosaic::CoolantChoice::Air
        })
        .workload(workload)
        .seconds(15)
        .seed(9)
        .grid(GridSpec::new(8, 8).expect("static dims"))
        .build()
        .expect("valid spec")
        .run()
        .expect("run succeeds")
}

#[test]
fn liquid_cooling_eliminates_hot_spots_on_both_stacks() {
    for tiers in [2, 4] {
        for policy in [PolicyKind::LcLb, PolicyKind::LcFuzzy] {
            let m = run(tiers, policy, WorkloadKind::MaxUtilization);
            assert_eq!(
                m.hotspot_time_per_core, 0.0,
                "{tiers}-tier {policy} must have no hot spots"
            );
            assert!(m.peak_temperature.to_celsius().0 < 85.0);
        }
    }
}

#[test]
fn air_cooled_4_tier_exceeds_110_celsius() {
    let m = run(4, PolicyKind::AcLb, WorkloadKind::Database);
    assert!(
        m.peak_temperature.to_celsius().0 > 110.0,
        "paper: 'the maximum temperature is much higher than 110 °C', got {}",
        m.peak_temperature.to_celsius().0
    );
}

#[test]
fn tdvfs_reduces_hot_spots_at_a_performance_cost() {
    let lb = run(2, PolicyKind::AcLb, WorkloadKind::MaxUtilization);
    let tdvfs = run(2, PolicyKind::AcTdvfsLb, WorkloadKind::MaxUtilization);
    assert!(
        tdvfs.hotspot_time_per_core < lb.hotspot_time_per_core,
        "TDVFS must reduce hot-spot residency ({} !< {})",
        tdvfs.hotspot_time_per_core,
        lb.hotspot_time_per_core
    );
    assert!(tdvfs.perf_loss_max > 0.0, "throttling defers work");
    assert!(lb.perf_loss_max == 0.0, "LB alone never throttles");
}

#[test]
fn fuzzy_saves_cooling_energy_on_every_application_workload() {
    for workload in WorkloadKind::applications() {
        let lb = run(2, PolicyKind::LcLb, workload);
        let fz = run(2, PolicyKind::LcFuzzy, workload);
        assert!(
            fz.pump_energy < lb.pump_energy,
            "{workload}: fuzzy pump energy {} must beat max-flow {}",
            fz.pump_energy,
            lb.pump_energy
        );
        assert!(
            fz.total_energy() < lb.total_energy(),
            "{workload}: fuzzy total energy must win"
        );
        assert!(fz.perf_loss_max < 1e-4, "{workload}: negligible perf loss");
    }
}

#[test]
fn four_tier_liquid_runs_cooler_than_two_tier() {
    let two = run(2, PolicyKind::LcLb, WorkloadKind::Database);
    let four = run(4, PolicyKind::LcLb, WorkloadKind::Database);
    assert!(
        four.peak_temperature.0 < two.peak_temperature.0,
        "4-tier {} must be cooler than 2-tier {}",
        four.peak_temperature,
        two.peak_temperature
    );
}

#[test]
fn runs_are_fully_deterministic() {
    let a = run(2, PolicyKind::LcFuzzy, WorkloadKind::WebServer);
    let b = run(2, PolicyKind::LcFuzzy, WorkloadKind::WebServer);
    assert_eq!(a, b);
}

#[test]
fn mean_fuzzy_flow_sits_inside_the_table1_envelope() {
    let m = run(2, PolicyKind::LcFuzzy, WorkloadKind::Multimedia);
    let q = m.mean_flow.expect("liquid cooled").to_ml_per_min();
    assert!(
        (10.0 - 1e-9..=32.3 + 1e-9).contains(&q),
        "mean flow {q} ml/min"
    );
}
