//! Integration tests of the `ScenarioSpec`/`Study` API:
//!
//! * the fig6/fig7 datasets produced through the `Study` API are
//!   bit-identical at 1 and 8 threads, with exactly one full
//!   factorisation per (stack, grid) pattern asserted via `SolverStats`;
//! * the thermal-analysis donation machinery falls back safely on a
//!   shape mismatch;
//! * continuous flow modulation exercises the bounded LRU operator
//!   caches without unbounded growth.

use cmosaic::experiments::{fig6_dataset, fig6_study, fig7_dataset};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::FlowSchedule;
use cmosaic::{BatchRunner, ScenarioSpec};
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_power::trace::WorkloadKind;

fn tiny_grid() -> GridSpec {
    GridSpec::new(6, 6).expect("static dims")
}

const SECONDS: usize = 4;
const SEED: u64 = 7;

#[test]
fn fig6_dataset_is_bit_identical_across_threads() {
    let serial = fig6_dataset(&BatchRunner::new(1), SECONDS, SEED, tiny_grid()).unwrap();
    let parallel = fig6_dataset(&BatchRunner::new(8), SECONDS, SEED, tiny_grid()).unwrap();
    assert_eq!(
        serial, parallel,
        "fig6 rows must not depend on thread count"
    );
    // Sanity on the aggregation itself: one row per figure configuration,
    // with liquid-cooled rows free of per-core hot spots.
    assert_eq!(serial.len(), 7);
    assert!(serial
        .iter()
        .filter(|r| r.policy.is_liquid_cooled())
        .all(|r| r.hotspot_max_util_per_core == 0.0));
}

#[test]
fn fig7_dataset_is_bit_identical_across_threads() {
    let serial = fig7_dataset(&BatchRunner::new(1), SECONDS, SEED, tiny_grid()).unwrap();
    let parallel = fig7_dataset(&BatchRunner::new(8), SECONDS, SEED, tiny_grid()).unwrap();
    assert_eq!(
        serial, parallel,
        "fig7 rows must not depend on thread count"
    );
    assert_eq!(serial.len(), 7);
    let baseline = &serial[0];
    assert_eq!((baseline.tiers, baseline.policy), (2, PolicyKind::AcLb));
    assert!((baseline.system_energy_norm - 1.0).abs() < 1e-12);
}

#[test]
fn fig6_study_factorises_once_per_pattern_at_any_thread_count() {
    for threads in [1usize, 8] {
        let report = fig6_study(SECONDS, SEED, tiny_grid())
            .run(&BatchRunner::new(threads))
            .unwrap();
        // 2/4 tiers x air/liquid on one grid: four operator patterns, and
        // the SolverStats across all 28 scenarios show exactly four full
        // pivoting factorisations — everything else rode the donated
        // symbolic analyses.
        assert_eq!(report.pattern_groups(), 4);
        assert_eq!(report.total_full_factorizations(), 4, "{threads} threads");
        let adopted: u64 = report
            .outcomes()
            .iter()
            .map(|o| o.solver.adopted_symbolics)
            .sum();
        assert_eq!(adopted, 24, "28 scenarios minus 4 donors");
    }
}

#[test]
fn analysis_donation_is_bit_neutral_against_standalone_runs() {
    use cmosaic::study::Study;
    // Two specs of the same operator pattern: in a shared batch the
    // first donates its symbolic analysis and the second adopts it.
    let spec = |seed: u64| {
        ScenarioSpec::new()
            .label(format!("seed-{seed}"))
            .grid(tiny_grid())
            .seconds(SECONDS)
            .seed(seed)
    };
    let solo = |seed: u64| {
        let report = Study::from_specs(vec![spec(seed)])
            .run(&BatchRunner::new(1))
            .unwrap();
        report.outcomes()[0].metrics.clone()
    };
    let batch = Study::from_specs(vec![spec(1), spec(2)])
        .run(&BatchRunner::new(2))
        .unwrap();
    let outcomes = batch.outcomes();
    // The batch really exercised donation: one pivoting factorisation,
    // and the second slot rode the donated analysis.
    assert_eq!(batch.total_full_factorizations(), 1);
    assert!(outcomes[1].solver.adopted_symbolics >= 1);
    // Donation is bit-neutral: each slot is bitwise what a standalone
    // run of the same spec produces, donor and adopter alike.
    assert_eq!(outcomes[0].metrics, solo(1), "donor != standalone");
    assert_eq!(outcomes[1].metrics, solo(2), "adopter != standalone");
}

#[test]
fn adopting_a_mismatched_thermal_analysis_falls_back_safely() {
    let scenario = |grid: GridSpec| {
        ScenarioSpec::new()
            .grid(grid)
            .seconds(2)
            .seed(3)
            .build()
            .expect("valid spec")
    };
    // Donor on a 6x6 grid.
    let donor = scenario(tiny_grid());
    let mut donor_sim = donor.build_simulator().unwrap();
    donor_sim.initialize().unwrap();
    donor_sim.run(2).unwrap();
    let analysis = donor_sim
        .export_thermal_analysis()
        .expect("solved at least once");

    // Same pattern: the analysis is adopted.
    let mut twin_sim = donor.build_simulator().unwrap();
    assert!(twin_sim.adopt_thermal_analysis(&analysis));
    twin_sim.initialize().unwrap();
    twin_sim.run(2).unwrap();
    let stats = twin_sim.solver_stats();
    assert_eq!(stats.full_factorizations, 0, "{stats:?}");
    assert!(stats.adopted_symbolics >= 1, "{stats:?}");

    // Different grid => different sparsity pattern: the adoption is
    // refused, and the simulator transparently pays its own full
    // factorisation instead of corrupting the solve.
    let other = scenario(GridSpec::new(8, 8).expect("static dims"));
    let mut other_sim = other.build_simulator().unwrap();
    assert!(
        !other_sim.adopt_thermal_analysis(&analysis),
        "mismatched patterns must be rejected"
    );
    other_sim.initialize().unwrap();
    let mismatched = other_sim.run(2).unwrap();
    let stats = other_sim.solver_stats();
    assert_eq!(stats.full_factorizations, 1, "{stats:?}");
    assert_eq!(stats.adopted_symbolics, 0, "{stats:?}");
    assert_eq!(stats.pivot_fallbacks, 0, "{stats:?}");

    // And the fallback run is bit-identical to a never-adopting run.
    let mut clean_sim = other.build_simulator().unwrap();
    clean_sim.initialize().unwrap();
    assert_eq!(mismatched, clean_sim.run(2).unwrap());
}

#[test]
fn continuous_flow_modulation_stays_inside_the_bounded_operator_caches() {
    // A triangle sweep that visits a fresh flow almost every second for a
    // minute: far more distinct (flow, dt) operating points than the
    // 8-entry LRU caches hold.
    let seconds = 60;
    let scenario = ScenarioSpec::new()
        .policy(PolicyKind::LcLb)
        .flow_schedule(FlowSchedule::Sweep {
            lo: VolumetricFlow::from_ml_per_min(10.0),
            hi: VolumetricFlow::from_ml_per_min(32.3),
            period: seconds,
        })
        .grid(tiny_grid())
        .thermal_dt(0.5)
        .seconds(seconds)
        .build()
        .unwrap();
    let mut sim = scenario.build_simulator().unwrap();
    sim.initialize().unwrap();
    let m = sim.run(seconds).unwrap();
    assert!(m.chip_energy > 0.0);

    let cache = sim.cache_stats();
    assert!(
        cache.transient_evictions > 0,
        "a >8-level sweep must evict transient operators, got {cache:?}"
    );
    assert!(cache.transient_entries <= cache.capacity, "{cache:?}");
    assert!(cache.steady_entries <= cache.capacity, "{cache:?}");

    // Evictions cost refactorisations, never a new pivoting pass.
    let stats = sim.solver_stats();
    assert_eq!(stats.full_factorizations, 1, "{stats:?}");
    assert_eq!(stats.pivot_fallbacks, 0, "{stats:?}");
    assert!(
        stats.refactorizations > cache.capacity as u64,
        "every evicted operating point is rebuilt numerically: {stats:?}"
    );

    // The schedule actually modulated the pump: the mean flow sits
    // strictly inside the sweep band.
    let q = m.mean_flow.expect("liquid cooled").to_ml_per_min();
    assert!(q > 10.0 && q < 32.3, "mean swept flow {q} ml/min");
}

#[test]
fn iterative_backend_matches_the_direct_backend_on_a_fig6_cell() {
    // The acceptance test of the solver-backend tentpole: a fig6-style
    // scenario (2-tier water-cooled LC_FUZZY under the web-server
    // workload) run under ILU(0)-BiCGSTAB must reproduce the direct-LU
    // run within the iteration tolerance — across the whole closed loop,
    // not just one solve — while never paying for a pivoting
    // factorisation and never falling back.
    use cmosaic_thermal::SolverBackend;

    let base = ScenarioSpec::new()
        .policy(PolicyKind::LcFuzzy)
        .workload(WorkloadKind::WebServer)
        .grid(tiny_grid())
        .seconds(8)
        .seed(SEED);

    let run = |spec: &ScenarioSpec| {
        let scenario = spec.build().expect("valid spec");
        let mut sim = scenario.build_simulator().expect("builds");
        sim.initialize().expect("initialises");
        let metrics = sim.run(8).expect("runs");
        (metrics, sim.solver_stats())
    };

    let (direct, direct_stats) = run(&base);
    let (iterative, iter_stats) = run(&base.clone().solver(SolverBackend::iterative()));

    // Physics agreement to solver tolerance (1e-10 relative residual on
    // ~300 K fields leaves micro-kelvin slack; 1e-4 K is generous).
    let pd = direct.peak_temperature.0;
    let pi = iterative.peak_temperature.0;
    assert!((pd - pi).abs() < 1e-4, "peak {pd} K vs {pi} K");
    assert!(
        (direct.chip_energy - iterative.chip_energy).abs() < 1e-3 * direct.chip_energy,
        "chip energy {} vs {}",
        direct.chip_energy,
        iterative.chip_energy
    );
    assert!(
        (direct.pump_energy - iterative.pump_energy).abs() < 1e-3 * direct.pump_energy.max(1.0),
        "pump energy {} vs {}",
        direct.pump_energy,
        iterative.pump_energy
    );
    assert_eq!(
        direct.hotspot_time_per_core,
        iterative.hotspot_time_per_core
    );

    // Solver-path counters: the direct run factorises once; the iterative
    // run factorises never and serves every solve by BiCGSTAB.
    assert_eq!(direct_stats.full_factorizations, 1, "{direct_stats:?}");
    assert_eq!(direct_stats.iterative_solves, 0, "{direct_stats:?}");
    assert_eq!(iter_stats.full_factorizations, 0, "{iter_stats:?}");
    assert!(iter_stats.iterative_solves > 0, "{iter_stats:?}");
    assert_eq!(iter_stats.iterative_fallbacks, 0, "{iter_stats:?}");

    // Each backend is independently reproducible bit for bit.
    let (iterative2, _) = run(&base.clone().solver(SolverBackend::iterative()));
    assert_eq!(iterative, iterative2, "iterative runs are deterministic");
}
