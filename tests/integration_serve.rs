//! Integration tests of the `cmosaic-serve` daemon:
//!
//! * concurrent overlapping requests coalesce into one batch with exactly
//!   one full factorisation per distinct operator pattern — not per
//!   request — asserted via the `stats` counters;
//! * every served result is bit-identical (at the serialized-slot level)
//!   to an offline `BatchRunner` run of the same spec, cold or warm, and
//!   warm cache hits replay the identical per-epoch stream;
//! * a panicking scenario fails only its own slot while co-batched
//!   requests complete, and the daemon keeps serving afterwards;
//! * both transports speak the protocol end to end: NDJSON over a unix
//!   socket and chunked NDJSON over HTTP/1.1, with graceful shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use cmosaic::fault::{FaultKind, FaultPlan};
use cmosaic::{BatchRunner, ScenarioSpec};
use cmosaic_floorplan::GridSpec;
use cmosaic_serve::json::Json;
use cmosaic_serve::protocol::slot_json;
use cmosaic_serve::scheduler::{Reply, Scheduler, SchedulerConfig};
use cmosaic_serve::server::{Server, ServerConfig};

/// All seeds share one `(stack, grid, thermal)` operator pattern.
fn spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::new()
        .tiers(2)
        .grid(GridSpec::new(6, 6).expect("static dims"))
        .seconds(3)
        .seed(seed)
}

fn config(window_ms: u64) -> SchedulerConfig {
    SchedulerConfig {
        threads: 2,
        window: Duration::from_millis(window_ms),
        analysis_cache: 8,
        result_cache: 32,
    }
}

/// The serialized slot an offline single-scenario batch produces — the
/// byte-level ground truth every daemon answer must match.
fn offline_slot(spec: &ScenarioSpec) -> String {
    let scenario = spec.build().expect("spec builds");
    let report = BatchRunner::new(1).run_scenarios(std::slice::from_ref(&scenario));
    slot_json(&scenario.label(), spec.fingerprint(), &report.slots[0]).encode()
}

/// Drains a reply channel into (epoch events, done slots).
fn drain(rx: std::sync::mpsc::Receiver<Reply>) -> (Vec<Reply>, Vec<Json>) {
    let mut epochs = Vec::new();
    for reply in rx {
        match reply {
            e @ Reply::Epoch { .. } => epochs.push(e),
            Reply::Done { slots } => return (epochs, slots),
        }
    }
    panic!("reply channel closed without a done event");
}

#[test]
fn coalesced_requests_share_one_factorization_and_match_offline_runs() {
    let scheduler = Scheduler::start(config(400));
    // Four overlapping requests, three distinct specs, one pattern. The
    // fourth request asks for the same spec twice in one request.
    let rx_a = scheduler.submit(vec![spec(1), spec(2)], false).unwrap();
    let rx_b = scheduler.submit(vec![spec(2), spec(3)], false).unwrap();
    let rx_c = scheduler.submit(vec![spec(1)], false).unwrap();
    let rx_d = scheduler.submit(vec![spec(3), spec(3)], false).unwrap();

    let (_, a) = drain(rx_a);
    let (_, b) = drain(rx_b);
    let (_, c) = drain(rx_c);
    let (_, d) = drain(rx_d);

    // One coalesced batch: 4 requests, 7 requested slots, 3 unique
    // scenarios, 1 pattern group, exactly 1 full factorisation.
    let stats = scheduler.stats();
    assert_eq!(stats.cache.batches, 1, "requests must coalesce: {stats:?}");
    assert_eq!(stats.cache.requests, 4);
    assert_eq!(stats.cache.scenarios, 3);
    assert_eq!(stats.cache.coalesced_duplicates, 4);
    assert_eq!(stats.cache.result_misses, 3);
    assert_eq!(stats.cache.result_hits, 0);
    assert_eq!(stats.last_batch.pattern_groups, 1);
    assert_eq!(
        stats.last_batch.full_factorizations, 1,
        "one factorisation per pattern, not per request: {stats:?}"
    );
    assert_eq!(stats.solver.full_factorizations, 1);
    assert!(stats.solver.adopted_symbolics >= 2, "{stats:?}");

    // Every slot is bit-identical to the offline ground truth.
    let (o1, o2, o3) = (
        offline_slot(&spec(1)),
        offline_slot(&spec(2)),
        offline_slot(&spec(3)),
    );
    assert_eq!(a[0].encode(), o1);
    assert_eq!(a[1].encode(), o2);
    assert_eq!(b[0].encode(), o2);
    assert_eq!(b[1].encode(), o3);
    assert_eq!(c[0].encode(), o1);
    assert_eq!(d[0].encode(), o3);
    assert_eq!(d[1].encode(), o3);

    scheduler.shutdown();
}

#[test]
fn warm_cache_replays_bit_identical_results_and_epoch_streams() {
    let scheduler = Scheduler::start(config(5));
    let rx = scheduler.submit(vec![spec(11)], true).unwrap();
    let (cold_epochs, cold) = drain(rx);
    assert!(!cold_epochs.is_empty(), "streaming run emits epoch events");

    let rx = scheduler.submit(vec![spec(11)], true).unwrap();
    let (warm_epochs, warm) = drain(rx);

    // The warm answer comes from the result cache ...
    let stats = scheduler.stats();
    assert_eq!(stats.cache.result_hits, 1, "{stats:?}");
    assert_eq!(stats.cache.result_misses, 1);
    assert_eq!(
        stats.last_batch.full_factorizations, 0,
        "warm batch ran nothing"
    );
    // ... and is indistinguishable from the cold one, epochs included.
    assert_eq!(cold[0].encode(), warm[0].encode());
    assert_eq!(cold_epochs.len(), warm_epochs.len());
    for (c, w) in cold_epochs.iter().zip(&warm_epochs) {
        let (
            Reply::Epoch {
                fingerprint: cf,
                snap: cs,
            },
            Reply::Epoch {
                fingerprint: wf,
                snap: ws,
            },
        ) = (c, w)
        else {
            unreachable!("drain only returns epoch events here");
        };
        assert_eq!(cf, wf);
        assert_eq!(cs, ws);
    }
    // Both equal the offline ground truth.
    assert_eq!(cold[0].encode(), offline_slot(&spec(11)));

    scheduler.shutdown();
}

#[test]
fn panicking_scenario_fails_only_its_slot() {
    let scheduler = Scheduler::start(config(400));
    let faulty = spec(21).fault_plan(FaultPlan::none().at(1, FaultKind::Panic));
    let rx_bad = scheduler.submit(vec![faulty], false).unwrap();
    let rx_ok = scheduler.submit(vec![spec(22)], false).unwrap();

    let (_, bad) = drain(rx_bad);
    let (_, ok) = drain(rx_ok);

    // Same coalesced batch: the panic is isolated to its own slot.
    let stats = scheduler.stats();
    assert_eq!(stats.cache.batches, 1, "{stats:?}");
    assert_eq!(
        bad[0].get("ok").and_then(Json::as_bool),
        Some(false),
        "{}",
        bad[0].encode()
    );
    assert!(
        bad[0].get("error").is_some(),
        "failed slot reports its error: {}",
        bad[0].encode()
    );
    assert_eq!(
        ok[0].get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        ok[0].encode()
    );
    assert_eq!(ok[0].encode(), offline_slot(&spec(22)));

    // The daemon survives and keeps serving — including a warm replay of
    // the deterministic failure itself.
    let rx = scheduler.submit(
        vec![spec(21).fault_plan(FaultPlan::none().at(1, FaultKind::Panic))],
        false,
    );
    let (_, again) = drain(rx.expect("scheduler still accepts work"));
    assert_eq!(
        again[0].encode(),
        bad[0].encode(),
        "failures memoize deterministically"
    );
    assert_eq!(scheduler.stats().cache.result_hits, 1);

    scheduler.shutdown();
}

#[test]
fn shutdown_drains_inflight_work_and_refuses_new_submissions() {
    let scheduler = Scheduler::start(config(300));
    let rx = scheduler.submit(vec![spec(31)], false).unwrap();
    scheduler.shutdown(); // arrives inside the coalescing window
    let (_, slots) = drain(rx);
    assert_eq!(
        slots[0].encode(),
        offline_slot(&spec(31)),
        "drained, not dropped"
    );
    assert!(
        scheduler.submit(vec![spec(32)], false).is_none(),
        "new work is refused after shutdown"
    );
}

// ------------------------------------------------------------ transports --

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cmosaic-serve-{tag}-{}.sock", std::process::id()))
}

fn send_line(stream: &mut UnixStream, line: &str) {
    writeln!(stream, "{line}").expect("request written");
    stream.flush().expect("request flushed");
}

#[test]
fn unix_socket_ndjson_round_trip_with_graceful_shutdown() {
    let path = socket_path("ndjson");
    let server = Server::start(ServerConfig {
        socket: Some(path.clone()),
        http: None,
        scheduler: config(5),
    })
    .expect("server starts");

    let mut stream = UnixStream::connect(&path).expect("client connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    let mut next = |reader: &mut BufReader<UnixStream>| {
        line.clear();
        reader.read_line(&mut line).expect("response line");
        Json::parse(line.trim()).expect("response is valid JSON")
    };

    send_line(&mut stream, r#"{"op":"ping"}"#);
    assert_eq!(
        next(&mut reader).get("event").and_then(Json::as_str),
        Some("pong")
    );

    // Malformed request: error event, connection stays usable.
    send_line(&mut stream, "{nope");
    assert_eq!(
        next(&mut reader).get("event").and_then(Json::as_str),
        Some("error")
    );

    let run = r#"{"op":"run","id":"r1","specs":[
        {"tiers":2,"grid":{"nx":6,"ny":6},"seconds":3,"seed":41},
        {"tiers":2,"grid":{"nx":6,"ny":6},"seconds":3,"seed":42}]}"#
        .replace('\n', " ");
    send_line(&mut stream, &run);
    let done = next(&mut reader);
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(done.get("id").and_then(Json::as_str), Some("r1"));
    let results = done
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    let (o41, o42) = (offline_slot(&spec(41)), offline_slot(&spec(42)));
    assert_eq!(results[0].encode(), o41);
    assert_eq!(results[1].encode(), o42);

    // The identical request again: byte-identical answer off the cache.
    send_line(&mut stream, &run);
    let warm = next(&mut reader);
    assert_eq!(
        warm.encode(),
        done.encode(),
        "cache warmth must be invisible"
    );

    send_line(&mut stream, r#"{"op":"stats"}"#);
    let stats = next(&mut reader);
    assert_eq!(stats.get("event").and_then(Json::as_str), Some("stats"));
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("result_hits").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("result_misses").and_then(Json::as_u64), Some(2));

    send_line(&mut stream, r#"{"op":"shutdown"}"#);
    assert_eq!(
        next(&mut reader).get("event").and_then(Json::as_str),
        Some("bye")
    );
    drop(stream);

    server.wait();
    assert!(!path.exists(), "socket file removed on clean shutdown");
}

/// Minimal HTTP client: one request, returns (status line, body with
/// chunked framing stripped when present).
fn http_roundtrip(addr: std::net::SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("tcp connect");
    stream
        .write_all(request.as_bytes())
        .expect("request written");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    let body = if head.lines().any(|l| {
        l.to_ascii_lowercase()
            .contains("transfer-encoding: chunked")
    }) {
        let mut out = String::new();
        let mut rest = body;
        loop {
            let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
            let n = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
            if n == 0 {
                break;
            }
            out.push_str(&tail[..n]);
            rest = tail[n..].strip_prefix("\r\n").expect("chunk terminator");
        }
        out
    } else {
        body.to_string()
    };
    (status, body)
}

#[test]
fn http_transport_streams_epochs_and_serves_stats() {
    let server = Server::start(ServerConfig {
        socket: None,
        http: Some("127.0.0.1:0".to_string()),
        scheduler: config(5),
    })
    .expect("server starts");
    let addr = server.http_addr().expect("bound http address");

    let (status, body) = http_roundtrip(
        addr,
        "GET /ping HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("event")
            .and_then(Json::as_str),
        Some("pong")
    );

    let payload =
        r#"{"stream":true,"specs":[{"tiers":2,"grid":{"nx":6,"ny":6},"seconds":3,"seed":51}]}"#;
    let request = format!(
        "POST /run HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    let (status, body) = http_roundtrip(addr, &request);
    assert_eq!(status, "HTTP/1.1 200 OK");
    let events: Vec<Json> = body
        .lines()
        .map(|l| Json::parse(l).expect("NDJSON event line"))
        .collect();
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert!(kinds.len() >= 2, "epochs then done: {kinds:?}");
    assert!(
        kinds[..kinds.len() - 1].iter().all(|k| *k == "epoch"),
        "{kinds:?}"
    );
    assert_eq!(kinds[kinds.len() - 1], "done");
    let results = events[events.len() - 1]
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results[0].encode(), offline_slot(&spec(51)));

    let (status, body) = http_roundtrip(
        addr,
        "GET /stats HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    let stats = Json::parse(&body).unwrap();
    assert_eq!(
        stats
            .get("last_batch")
            .and_then(|b| b.get("full_factorizations"))
            .and_then(Json::as_u64),
        Some(1)
    );

    let (status, body) = http_roundtrip(
        addr,
        "POST /shutdown HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("event")
            .and_then(Json::as_str),
        Some("bye")
    );
    server.wait();
}
